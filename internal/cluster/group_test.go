package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"secndp/internal/core"
	"secndp/internal/field"
	"secndp/internal/memory"
	"secndp/internal/telemetry"
)

// flakyNDP wraps an honest shard behind a kill switch. It speaks the
// context interfaces so failures surface as errors (the wire client's
// behavior) rather than panics.
type flakyNDP struct {
	inner *core.HonestNDP
	dead  atomic.Bool
}

var errReplicaDead = errors.New("replica dead")

func (f *flakyNDP) WeightedSumContext(_ context.Context, geo core.Geometry, idx []int, w []uint64) ([]uint64, error) {
	if f.dead.Load() {
		return nil, errReplicaDead
	}
	return f.inner.WeightedSum(geo, idx, w), nil
}

func (f *flakyNDP) TagSumContext(_ context.Context, geo core.Geometry, idx []int, w []uint64) (field.Elem, error) {
	if f.dead.Load() {
		return field.Zero, errReplicaDead
	}
	return f.inner.TagSum(geo, idx, w), nil
}

func (f *flakyNDP) WeightedSum(geo core.Geometry, idx []int, w []uint64) []uint64 {
	if f.dead.Load() {
		panic(errReplicaDead)
	}
	return f.inner.WeightedSum(geo, idx, w)
}

func (f *flakyNDP) WeightedSumElem(geo core.Geometry, idx, jdx []int, w []uint64) uint64 {
	if f.dead.Load() {
		panic(errReplicaDead)
	}
	return f.inner.WeightedSumElem(geo, idx, jdx, w)
}

func (f *flakyNDP) TagSum(geo core.Geometry, idx []int, w []uint64) field.Elem {
	if f.dead.Load() {
		panic(errReplicaDead)
	}
	return f.inner.TagSum(geo, idx, w)
}

// fakeNDP is an identity-only replica for exercising the failover order;
// its ops are never reached (tests drive do() with a recording op).
type fakeNDP struct{ id int }

func (f *fakeNDP) WeightedSum(core.Geometry, []int, []uint64) []uint64          { return nil }
func (f *fakeNDP) WeightedSumElem(core.Geometry, []int, []int, []uint64) uint64 { return 0 }
func (f *fakeNDP) TagSum(core.Geometry, []int, []uint64) field.Elem             { return field.Zero }

func newFakeGroup(t *testing.T, n int, cooldown time.Duration) *ReplicaGroup {
	t.Helper()
	reps := make([]core.NDP, n)
	for i := range reps {
		reps[i] = &fakeNDP{id: i}
	}
	g, err := NewGroup(0, reps, GroupConfig{Cooldown: cooldown})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func repID(rep core.NDP) int { return rep.(*fakeNDP).id }

func TestGroupValidation(t *testing.T) {
	if _, err := NewGroup(0, nil, GroupConfig{}); err == nil {
		t.Fatal("empty replica group accepted")
	}
	if _, err := NewGroup(0, []core.NDP{&fakeNDP{}, nil}, GroupConfig{}); err == nil {
		t.Fatal("nil replica accepted")
	}
}

// TestGroupFailoverOrder: the op lands on the preferred replica when it
// answers; a failure walks down the order, the answering replica becomes
// preferred and the failed one cools down to the tail.
func TestGroupFailoverOrder(t *testing.T) {
	g := newFakeGroup(t, 3, time.Hour) // cooldown long enough to be observable
	ctx := context.Background()

	var tried []int
	record := func(failUpTo int) func(context.Context, core.NDP) error {
		return func(_ context.Context, rep core.NDP) error {
			id := repID(rep)
			tried = append(tried, id)
			if id < failUpTo {
				return fmt.Errorf("down")
			}
			return nil
		}
	}

	// Healthy: only replica 0 (preferred) is consulted.
	if err := g.do(ctx, record(0)); err != nil {
		t.Fatal(err)
	}
	if len(tried) != 1 || tried[0] != 0 {
		t.Fatalf("healthy group tried %v, want [0]", tried)
	}

	// Replicas 0 and 1 down: the op fails over to 2, which becomes
	// preferred.
	tried = nil
	if err := g.do(ctx, record(2)); err != nil {
		t.Fatal(err)
	}
	if len(tried) != 3 || tried[0] != 0 || tried[1] != 1 || tried[2] != 2 {
		t.Fatalf("failover tried %v, want [0 1 2]", tried)
	}
	if g.Preferred() != 2 {
		t.Fatalf("preferred = %d after replica 2 answered, want 2", g.Preferred())
	}

	// Next op: 2 first (sticky), then the cooling-down 0 and 1 only as
	// the tail.
	tried = nil
	if err := g.do(ctx, record(0)); err != nil {
		t.Fatal(err)
	}
	if len(tried) != 1 || tried[0] != 2 {
		t.Fatalf("post-failover tried %v, want [2]", tried)
	}
}

// TestGroupCooldownRecovery: a failed replica rejoins the healthy head of
// the order once its cooldown lapses.
func TestGroupCooldownRecovery(t *testing.T) {
	g := newFakeGroup(t, 2, time.Millisecond)
	ctx := context.Background()

	// Kill 0 once: preference moves to 1, 0 cools down.
	err := g.do(ctx, func(_ context.Context, rep core.NDP) error {
		if repID(rep) == 0 {
			return fmt.Errorf("down")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.order(nil); got[0] != 1 || got[1] != 0 {
		t.Fatalf("order during cooldown = %v, want [1 0]", got)
	}
	time.Sleep(5 * time.Millisecond)
	// Cooldown over: 0 is healthy again (1 stays preferred).
	if got := g.order(nil); got[0] != 1 || got[1] != 0 {
		t.Fatalf("order after cooldown = %v, want [1 0]", got)
	}
	h := &g.health[0]
	if h.downUntil.Load() > time.Now().UnixNano() {
		t.Fatal("replica 0 still marked down after cooldown lapsed")
	}
}

// TestGroupCooldownGrowth: consecutive failures stretch the cooldown up
// to the 8x cap, and one success resets it.
func TestGroupCooldownGrowth(t *testing.T) {
	g := newFakeGroup(t, 1, time.Minute)
	for i := 0; i < 12; i++ {
		g.failure(0)
	}
	until := g.health[0].downUntil.Load() - time.Now().UnixNano()
	if until > int64(8*time.Minute) || until < int64(7*time.Minute) {
		t.Fatalf("cooldown after 12 consecutive failures = %v, want ~8m (capped)", time.Duration(until))
	}
	g.success(0)
	if g.health[0].consecFails.Load() != 0 || g.health[0].downUntil.Load() != 0 {
		t.Fatal("success did not reset health")
	}
}

// TestGroupAllFail: when every replica refuses, the error names the shard
// and carries each replica's failure.
func TestGroupAllFail(t *testing.T) {
	g := newFakeGroup(t, 3, time.Hour)
	err := g.do(context.Background(), func(_ context.Context, rep core.NDP) error {
		return fmt.Errorf("replica %d refused", repID(rep))
	})
	if err == nil {
		t.Fatal("want error when every replica fails")
	}
	msg := err.Error()
	if !strings.Contains(msg, "every replica failed") {
		t.Fatalf("error %q does not name total failure", msg)
	}
	for r := 0; r < 3; r++ {
		if !strings.Contains(msg, fmt.Sprintf("replica %d", r)) {
			t.Fatalf("error %q missing replica %d's failure", msg, r)
		}
	}
}

// TestGroupContextCancel: a canceled context aborts between attempts with
// the context's error, not a replica fault.
func TestGroupContextCancel(t *testing.T) {
	g := newFakeGroup(t, 2, time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := g.do(ctx, func(context.Context, core.NDP) error { t.Fatal("op ran under canceled context"); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestGroupFailoverEquivalence: a 3-replica group over identical honest
// shards answers byte-identically to a bare shard, with any subset of
// replicas dead short of all of them — sums, tags, and the element path.
func TestGroupFailoverEquivalence(t *testing.T) {
	fx := buildFixture(t, 1, RangeSharding, memory.TagSep)
	reps := make([]*flakyNDP, 3)
	ndps := make([]core.NDP, 3)
	for r := range reps {
		reps[r] = &flakyNDP{inner: fx.shards[0].(*core.HonestNDP)}
		ndps[r] = reps[r]
	}
	g, err := NewGroup(0, ndps, GroupConfig{Cooldown: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	oracle := fx.shards[0]
	rng := rand.New(rand.NewSource(97))
	ctx := context.Background()
	for round := 0; round < 3; round++ {
		// Round 0: all healthy. Round 1: replica 0 dead. Round 2: 0+1 dead.
		if round > 0 {
			reps[round-1].dead.Store(true)
		}
		idx, w := randQuery(rng, 64, 6)
		sum, err := g.Sum(ctx, fx.geo, idx, w)
		if err != nil {
			t.Fatalf("round %d: Sum: %v", round, err)
		}
		want := oracle.WeightedSum(fx.geo, idx, w)
		for j := range want {
			if sum[j] != want[j] {
				t.Fatalf("round %d: Sum[%d] = %d, want %d", round, j, sum[j], want[j])
			}
		}
		tag, err := g.Tag(ctx, fx.geo, idx, w)
		if err != nil {
			t.Fatalf("round %d: Tag: %v", round, err)
		}
		if tag != oracle.TagSum(fx.geo, idx, w) {
			t.Fatalf("round %d: tag mismatch", round)
		}
		jdx := make([]int, len(idx))
		for k := range jdx {
			jdx[k] = rng.Intn(16)
		}
		el, err := g.Elem(ctx, fx.geo, idx, jdx, w)
		if err != nil {
			t.Fatalf("round %d: Elem: %v", round, err)
		}
		if want := oracle.WeightedSumElem(fx.geo, idx, jdx, w); el != want {
			t.Fatalf("round %d: Elem = %d, want %d", round, el, want)
		}
	}
	// All three dead: total failure surfaces as an error.
	reps[2].dead.Store(true)
	if _, err := g.Sum(ctx, fx.geo, []int{0}, []uint64{1}); err == nil {
		t.Fatal("Sum succeeded with every replica dead")
	}
}

// TestGroupTelemetry: per-replica counters track subops and failures, the
// healthy gauge flips with replica state, and failovers land on the
// shared counter.
func TestGroupTelemetry(t *testing.T) {
	fx := buildFixture(t, 1, RangeSharding, memory.TagSep)
	reps := []*flakyNDP{
		{inner: fx.shards[0].(*core.HonestNDP)},
		{inner: fx.shards[0].(*core.HonestNDP)},
	}
	g, err := NewGroup(0, []core.NDP{reps[0], reps[1]}, GroupConfig{Cooldown: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	failovers := reg.Counter("failovers", "test")
	g.instrument(reg, "shard0_", failovers)

	reps[0].dead.Store(true)
	if _, err := g.Sum(context.Background(), fx.geo, []int{1}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	counters := map[string]uint64{}
	gauges := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	for _, ga := range snap.Gauges {
		gauges[ga.Name] = ga.Value
	}
	if counters["shard0_replica0_subops_total"] != 1 || counters["shard0_replica0_failures_total"] != 1 {
		t.Fatalf("replica0 counters = %v", counters)
	}
	if counters["shard0_replica1_subops_total"] != 1 || counters["shard0_replica1_failures_total"] != 0 {
		t.Fatalf("replica1 counters = %v", counters)
	}
	if counters["failovers"] != 1 {
		t.Fatalf("failovers = %d, want 1", counters["failovers"])
	}
	if gauges["shard0_replica0_healthy"] != 0 || gauges["shard0_replica1_healthy"] != 1 {
		t.Fatalf("healthy gauges = %v", gauges)
	}
}

// TestReplicatedEquivalence: a replicated cluster with one dead replica
// per shard answers byte-identically to a bare NDP over the whole table —
// no mirror configured, so any leak past failover would fail the query.
func TestReplicatedEquivalence(t *testing.T) {
	fx := buildFixture(t, 4, RangeSharding, memory.TagSep)
	groups := make([]*ReplicaGroup, 4)
	killed := make([]*flakyNDP, 4)
	for s := range groups {
		a := &flakyNDP{inner: fx.shards[s].(*core.HonestNDP)}
		b := &flakyNDP{inner: fx.shards[s].(*core.HonestNDP)}
		killed[s] = a
		g, err := NewGroup(s, []core.NDP{a, b}, GroupConfig{Cooldown: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		groups[s] = g
	}
	cnd, err := NewReplicated(fx.smap, groups, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := &core.HonestNDP{Mem: fx.staging}
	rng := rand.New(rand.NewSource(131))
	ctx := context.Background()
	for round := 0; round < 2; round++ {
		if round == 1 {
			for _, f := range killed {
				f.dead.Store(true)
			}
		}
		idx, w := randQuery(rng, 64, 9)
		ictx, flag := WithFlag(ctx)
		sum, err := cnd.WeightedSumContext(ictx, fx.geo, idx, w)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := oracle.WeightedSum(fx.geo, idx, w)
		for j := range want {
			if sum[j] != want[j] {
				t.Fatalf("round %d: col %d: %d != %d", round, j, sum[j], want[j])
			}
		}
		tag, err := cnd.TagSumContext(ictx, fx.geo, idx, w)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if tag != oracle.TagSum(fx.geo, idx, w) {
			t.Fatalf("round %d: tag mismatch", round)
		}
		if flag.Any() {
			t.Fatalf("round %d: replica failover marked the gather degraded", round)
		}
	}
}

// TestEpochGate: enter/exit bookkeeping, drain blocking until the last
// in-flight gather exits, and drain honoring cancellation.
func TestEpochGate(t *testing.T) {
	var g epochGate
	g.enter(1)
	g.enter(1)
	g.enter(2)
	if g.count(1) != 2 || g.count(2) != 1 {
		t.Fatalf("counts = %d/%d, want 2/1", g.count(1), g.count(2))
	}
	g.exit(1)

	done := make(chan error, 1)
	go func() { done <- g.drain(context.Background(), 1) }()
	select {
	case <-done:
		t.Fatal("drain returned with a gather still in flight")
	case <-time.After(10 * time.Millisecond):
	}
	g.exit(1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("drain did not return after the last exit")
	}

	// Draining an epoch with no entries returns immediately.
	if err := g.drain(context.Background(), 7); err != nil {
		t.Fatal(err)
	}
	// A canceled context aborts a blocked drain.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := g.drain(ctx, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("drain under canceled ctx = %v, want context.Canceled", err)
	}
	g.exit(2)
}

// newBalancedGroup is newFakeGroup with a balance policy.
func newBalancedGroup(t *testing.T, n int, b Balance) *ReplicaGroup {
	t.Helper()
	reps := make([]core.NDP, n)
	for i := range reps {
		reps[i] = &fakeNDP{id: i}
	}
	g, err := NewGroup(0, reps, GroupConfig{Cooldown: time.Hour, Balance: b})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestGroupRoundRobinSpreads: under BalanceRoundRobin every healthy
// replica takes the same share of first attempts instead of the
// preferred replica taking all of them.
func TestGroupRoundRobinSpreads(t *testing.T) {
	g := newBalancedGroup(t, 3, BalanceRoundRobin)
	first := map[int]int{}
	for i := 0; i < 9; i++ {
		if err := g.do(context.Background(), func(_ context.Context, rep core.NDP) error {
			first[repID(rep)]++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 3; r++ {
		if first[r] != 3 {
			t.Fatalf("round-robin firsts %v, want 3 each", first)
		}
	}
}

// TestGroupRoundRobinSkipsCoolingDown: a failed replica cools down and
// the rotation continues over the survivors only; every op still
// succeeds (balancing must not weaken failover).
func TestGroupRoundRobinSkipsCoolingDown(t *testing.T) {
	g := newBalancedGroup(t, 3, BalanceRoundRobin)
	dead := 1
	hits := map[int]int{}
	for i := 0; i < 12; i++ {
		if err := g.do(context.Background(), func(_ context.Context, rep core.NDP) error {
			id := repID(rep)
			if id == dead {
				return fmt.Errorf("down")
			}
			hits[id]++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if hits[dead] != 0 {
		t.Fatalf("dead replica served %d ops", hits[dead])
	}
	// After the first failure puts it in cooldown, the survivors split the
	// rotation; each must have served several ops.
	if hits[0] < 4 || hits[2] < 4 {
		t.Fatalf("survivors underused: %v", hits)
	}
}

// TestGroupLeastInflightOrder: the least-loaded healthy replica is tried
// first; ties and the rest follow in load order, stably.
func TestGroupLeastInflightOrder(t *testing.T) {
	g := newBalancedGroup(t, 3, BalanceLeastInflight)
	g.inflight[0].Store(5)
	g.inflight[1].Store(0)
	g.inflight[2].Store(2)
	order := g.order(nil)
	want := []int{1, 2, 0}
	for i, r := range want {
		if order[i] != r {
			t.Fatalf("least-inflight order %v, want %v", order, want)
		}
	}
}

// TestGroupInflightTracking: do() maintains the per-replica in-flight
// gauge — up while the op runs, back to zero after.
func TestGroupInflightTracking(t *testing.T) {
	g := newBalancedGroup(t, 2, BalanceLeastInflight)
	var seen int64
	if err := g.do(context.Background(), func(_ context.Context, rep core.NDP) error {
		seen = g.Inflight(repID(rep))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Fatalf("in-flight during op = %d, want 1", seen)
	}
	for r := 0; r < 2; r++ {
		if v := g.Inflight(r); v != 0 {
			t.Fatalf("in-flight after op = %d on replica %d, want 0", v, r)
		}
	}
}

// Package cluster is the scatter-gather layer over many NDP servers: a
// shard map partitions a table's rows across N untrusted NDP nodes, each
// query is planned into per-shard sub-queries, the partial ciphertext
// sums come back concurrently, and the gather re-adds them in the ring
// (and the tag field) to exactly the single-NDP answer.
//
// Correctness rests on the scheme's linearity (paper §IV-F): the
// weighted sum Σ_k w_k·C[i_k] splits along any partition of the index
// list, the per-shard partials add back losslessly in Z(2^we), and the
// per-shard tag sums add back in F_q — so the gathered result, its
// decryption, and its verification transcript are byte-identical to a
// single NDP holding every row. Security is unchanged: each shard holds
// only ciphertext shares and tags for its rows (Secure Scattered Memory
// makes the same argument for distributing shares across untrusted
// nodes), and the one aggregated verification covers the whole gather.
package cluster

import (
	"fmt"

	"secndp/internal/core"
)

// Strategy selects how row indices map onto shards.
type Strategy int

const (
	// RangeSharding assigns contiguous blocks of ⌈rows/shards⌉ rows per
	// shard: provisioning ships one contiguous blob per shard and range
	// scans stay shard-local.
	RangeSharding Strategy = iota
	// HashSharding spreads rows by a fixed avalanche hash of the row
	// index: skewed/hot row sets load-balance across shards at the cost
	// of fragmented provisioning writes.
	HashSharding
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case RangeSharding:
		return "range"
	case HashSharding:
		return "hash"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Map is the authoritative row→shard assignment for one table. It is
// immutable after construction; the epoch number identifies the
// assignment generation so future live resharding can fence stale
// sub-queries (a shard that changed owners bumps the epoch, and partials
// computed under an older epoch are discarded at the gather).
type Map struct {
	numRows   int
	numShards int
	strategy  Strategy
	epoch     uint64
	chunk     int // RangeSharding: rows per shard, ⌈numRows/numShards⌉
}

// NewMap builds the row→shard assignment for numRows rows over numShards
// shards under the given strategy. epoch is the assignment generation
// (first provisioning uses 1).
func NewMap(numRows, numShards int, strategy Strategy, epoch uint64) (*Map, error) {
	if numRows < 0 {
		return nil, fmt.Errorf("cluster: negative row count %d", numRows)
	}
	if numShards <= 0 {
		return nil, fmt.Errorf("cluster: shard count %d must be positive", numShards)
	}
	switch strategy {
	case RangeSharding, HashSharding:
	default:
		return nil, fmt.Errorf("cluster: unknown sharding strategy %d", int(strategy))
	}
	m := &Map{numRows: numRows, numShards: numShards, strategy: strategy, epoch: epoch}
	if numRows > 0 {
		m.chunk = (numRows + numShards - 1) / numShards
	} else {
		m.chunk = 1
	}
	return m, nil
}

// NumRows returns the table's row count.
func (m *Map) NumRows() int { return m.numRows }

// NumShards returns the shard count.
func (m *Map) NumShards() int { return m.numShards }

// Strategy returns the sharding strategy.
func (m *Map) Strategy() Strategy { return m.strategy }

// Epoch returns the assignment generation.
func (m *Map) Epoch() uint64 { return m.epoch }

// mix64 is the splitmix64 finisher: a fixed, key-less avalanche over the
// row index. Shard placement is public information (the layout already
// is), so an unkeyed hash leaks nothing the adversary does not hold.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Shard returns the owner of row i. The row must be in [0, NumRows);
// out-of-range rows panic, matching the layout's addressing discipline
// (callers validate queries before planning them).
func (m *Map) Shard(i int) int {
	if i < 0 || i >= m.numRows {
		panic(fmt.Sprintf("cluster: row %d out of range [0,%d)", i, m.numRows))
	}
	if m.strategy == RangeSharding {
		return i / m.chunk
	}
	return int(mix64(uint64(i)) % uint64(m.numShards))
}

// Runs returns shard's owned rows as maximal contiguous [lo,hi) runs in
// increasing order — the unit of provisioning: each run ships as one
// blob write at its global address. RangeSharding yields at most one
// run; HashSharding yields many short ones.
func (m *Map) Runs(shard int) [][2]int {
	if shard < 0 || shard >= m.numShards {
		panic(fmt.Sprintf("cluster: shard %d out of range [0,%d)", shard, m.numShards))
	}
	if m.numRows == 0 {
		return nil
	}
	if m.strategy == RangeSharding {
		lo := shard * m.chunk
		hi := lo + m.chunk
		if hi > m.numRows {
			hi = m.numRows
		}
		if lo >= hi {
			return nil
		}
		return [][2]int{{lo, hi}}
	}
	var runs [][2]int
	start := -1
	for i := 0; i < m.numRows; i++ {
		if m.Shard(i) == shard {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			runs = append(runs, [2]int{start, i})
			start = -1
		}
	}
	if start >= 0 {
		runs = append(runs, [2]int{start, m.numRows})
	}
	return runs
}

// SubQuery is one shard's slice of a weighted-sum query: the (row,
// weight) pairs it owns, in their original relative order.
type SubQuery struct {
	Shard   int
	Idx     []int
	Weights []uint64
}

// Split partitions one query's (idx, weights) pairs by owning shard.
// Only shards referenced by at least one row appear, in increasing shard
// order. Every pair lands on exactly one sub-query, so the per-shard
// partial sums re-add to the unsharded result by linearity. len(idx)
// must equal len(weights) and every index must be in range (callers
// validate with checkQuery first).
func (m *Map) Split(idx []int, weights []uint64) []SubQuery {
	if len(idx) != len(weights) {
		panic(fmt.Sprintf("cluster: %d indices vs %d weights", len(idx), len(weights)))
	}
	if len(idx) == 0 {
		return nil
	}
	counts := make([]int, m.numShards)
	for _, i := range idx {
		counts[m.Shard(i)]++
	}
	subs := make([]SubQuery, 0, m.numShards)
	slot := make([]int, m.numShards) // shard → index into subs, or -1
	for s := range slot {
		slot[s] = -1
	}
	for s, c := range counts {
		if c == 0 {
			continue
		}
		slot[s] = len(subs)
		subs = append(subs, SubQuery{
			Shard:   s,
			Idx:     make([]int, 0, c),
			Weights: make([]uint64, 0, c),
		})
	}
	for k, i := range idx {
		sub := &subs[slot[m.Shard(i)]]
		sub.Idx = append(sub.Idx, i)
		sub.Weights = append(sub.Weights, weights[k])
	}
	return subs
}

// elemSub is one shard's slice of an element-indexed query: the (row,
// column, weight) triples it owns, in their original relative order.
type elemSub struct {
	Shard   int
	Idx     []int
	Jdx     []int
	Weights []uint64
}

// splitElem partitions an element-indexed query's (idx, jdx, weights)
// triples by owning shard, mirroring Split. Column picks ride along
// with their rows; by linearity the per-shard element partials add back
// to the unsharded scalar in the ring.
func (m *Map) splitElem(idx, jdx []int, weights []uint64) []elemSub {
	if len(idx) != len(weights) || len(idx) != len(jdx) {
		panic(fmt.Sprintf("cluster: %d indices vs %d columns vs %d weights", len(idx), len(jdx), len(weights)))
	}
	if len(idx) == 0 {
		return nil
	}
	counts := make([]int, m.numShards)
	for _, i := range idx {
		counts[m.Shard(i)]++
	}
	subs := make([]elemSub, 0, m.numShards)
	slot := make([]int, m.numShards)
	for s := range slot {
		slot[s] = -1
	}
	for s, c := range counts {
		if c == 0 {
			continue
		}
		slot[s] = len(subs)
		subs = append(subs, elemSub{
			Shard:   s,
			Idx:     make([]int, 0, c),
			Jdx:     make([]int, 0, c),
			Weights: make([]uint64, 0, c),
		})
	}
	for k, i := range idx {
		sub := &subs[slot[m.Shard(i)]]
		sub.Idx = append(sub.Idx, i)
		sub.Jdx = append(sub.Jdx, jdx[k])
		sub.Weights = append(sub.Weights, weights[k])
	}
	return subs
}

// SubBatch is one shard's slice of a query batch: the per-request
// sub-queries that touch the shard, plus the mapping back to the
// original request indices.
type SubBatch struct {
	Shard int
	// Reqs[j] holds request Origin[j]'s rows owned by this shard.
	Reqs []core.BatchRequest
	// Origin[j] is the index of Reqs[j] in the original batch.
	Origin []int
}

// SplitBatch partitions every request of a batch by owning shard. A
// request appears in a shard's sub-batch only if it references at least
// one row there; a request referencing no rows at all appears nowhere
// (its sum is the empty sum — zero). Only shards with at least one
// sub-request are returned, in increasing shard order, so each shard's
// sub-batch rides one BatchNDP exchange and reuses the per-shard
// batch-plan dedup machinery unmodified.
func (m *Map) SplitBatch(reqs []core.BatchRequest) []SubBatch {
	perShard := make([][]core.BatchRequest, m.numShards)
	origins := make([][]int, m.numShards)
	for ri := range reqs {
		subs := m.Split(reqs[ri].Idx, reqs[ri].Weights)
		for _, sub := range subs {
			perShard[sub.Shard] = append(perShard[sub.Shard],
				core.BatchRequest{Idx: sub.Idx, Weights: sub.Weights})
			origins[sub.Shard] = append(origins[sub.Shard], ri)
		}
	}
	out := make([]SubBatch, 0, m.numShards)
	for s := range perShard {
		if len(perShard[s]) == 0 {
			continue
		}
		out = append(out, SubBatch{Shard: s, Reqs: perShard[s], Origin: origins[s]})
	}
	return out
}

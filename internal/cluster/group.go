package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"secndp/internal/core"
	"secndp/internal/field"
	"secndp/internal/ring"
	"secndp/internal/telemetry"
)

// ReplicaGroup fronts one shard's R replicas: independent NDP servers
// provisioned with byte-identical ciphertext and tags for the shard's
// rows. Because the scheme is deterministic given (addr, version), any
// replica's partial sums are byte-identical to any other's, so failover
// needs no re-verification protocol — the gather's one aggregated MAC
// check covers a partial regardless of which replica produced it.
//
// Calls try the preferred replica first and fail over down the
// preference order on transport failure; the shard only surfaces an
// error (and the cluster only touches the TEE mirror) after every
// replica has refused. Health state is cheap and local: a replica that
// just failed is skipped for a cooldown window instead of paying its
// full retry/backoff latency on every query, and the first replica to
// answer becomes the new preferred one (stickiness keeps a healthy
// cluster on one connection per shard). Safe for concurrent use.
type ReplicaGroup struct {
	shard    int
	replicas []core.NDP
	cooldown time.Duration
	balance  Balance

	// preferred is the replica index tried first; the last replica to
	// answer successfully.
	preferred atomic.Int32
	health    []replicaHealth
	// rr is the round-robin cursor (BalanceRoundRobin).
	rr atomic.Uint64
	// inflight counts the sub-operations currently running against each
	// replica (BalanceLeastInflight reads it; every policy maintains it).
	inflight []atomic.Int64

	// Per-replica telemetry handles (nil until instrument).
	tel       []replicaTel
	failovers *telemetry.Counter
}

// replicaHealth is one replica's failure-local state.
type replicaHealth struct {
	// consecFails counts consecutive failed attempts (any op).
	consecFails atomic.Uint32
	// downUntil is the unix-nano instant until which the replica is
	// skipped in the preference order. 0 = healthy.
	downUntil atomic.Int64
}

type replicaTel struct {
	subops    *telemetry.Counter
	failures  *telemetry.Counter
	healthyGa *telemetry.Gauge
}

// Balance selects how a replica group spreads reads across its healthy
// replicas. Replicas hold byte-identical ciphertext+tags, so any policy
// returns byte-identical partials; the policies differ only in which
// connections carry the load.
type Balance int

const (
	// BalanceSticky pins a healthy group to its preferred replica (the
	// last one to answer) — one warm connection per shard, the default.
	BalanceSticky Balance = iota
	// BalanceRoundRobin rotates the first attempt across the healthy
	// replicas, spreading read load (and connection pressure) evenly.
	BalanceRoundRobin
	// BalanceLeastInflight sends each read to the healthy replica with
	// the fewest sub-operations currently in flight, adapting to
	// replicas of uneven speed.
	BalanceLeastInflight
)

// GroupConfig tunes a replica group's failover behavior.
type GroupConfig struct {
	// Cooldown is how long a replica that just failed is demoted to the
	// tail of the preference order before being tried eagerly again.
	// While cooling down the replica is still reachable as a last
	// resort — the group always exhausts every replica before giving
	// up. <= 0 selects 500ms.
	Cooldown time.Duration
	// Balance selects the read load-balancing policy across healthy
	// replicas (default BalanceSticky). Failover semantics are
	// unchanged: every policy walks the full preference order, healthy
	// replicas before cooling-down ones.
	Balance Balance
}

// DefaultReplicaCooldown is the failover cooldown used when GroupConfig
// leaves it zero.
const DefaultReplicaCooldown = 500 * time.Millisecond

// NewGroup builds the failover group for one shard from its replica
// clients. Every replica must be provisioned with identical ciphertext
// and tags for the shard's rows.
func NewGroup(shard int, replicas []core.NDP, cfg GroupConfig) (*ReplicaGroup, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("cluster: shard %d: replica group needs at least one replica", shard)
	}
	for r, rep := range replicas {
		if rep == nil {
			return nil, fmt.Errorf("cluster: shard %d: nil replica %d", shard, r)
		}
	}
	cd := cfg.Cooldown
	if cd <= 0 {
		cd = DefaultReplicaCooldown
	}
	return &ReplicaGroup{
		shard:    shard,
		replicas: replicas,
		cooldown: cd,
		balance:  cfg.Balance,
		health:   make([]replicaHealth, len(replicas)),
		inflight: make([]atomic.Int64, len(replicas)),
	}, nil
}

// Size returns the replica count.
func (g *ReplicaGroup) Size() int { return len(g.replicas) }

// Shard returns the shard index the group serves.
func (g *ReplicaGroup) Shard() int { return g.shard }

// Replica returns replica r's client (for instrumentation and tests).
func (g *ReplicaGroup) Replica(r int) core.NDP { return g.replicas[r] }

// Preferred returns the replica currently tried first.
func (g *ReplicaGroup) Preferred() int { return int(g.preferred.Load()) }

// instrument attaches per-replica series. Called by NDP.Instrument under
// the same "before the first query" discipline.
func (g *ReplicaGroup) instrument(reg *telemetry.Registry, prefix string, failovers *telemetry.Counter) {
	g.failovers = failovers
	g.tel = make([]replicaTel, len(g.replicas))
	for r := range g.replicas {
		p := fmt.Sprintf("%sreplica%d_", prefix, r)
		g.tel[r] = replicaTel{
			subops: reg.Counter(p+"subops_total",
				fmt.Sprintf("Sub-operations attempted on shard %d replica %d.", g.shard, r)),
			failures: reg.Counter(p+"failures_total",
				fmt.Sprintf("Sub-operations on shard %d replica %d that failed at the transport.", g.shard, r)),
			healthyGa: reg.Gauge(p+"healthy",
				fmt.Sprintf("Shard %d replica %d health: 1 serving, 0 cooling down after a failure.", g.shard, r)),
		}
		g.tel[r].healthyGa.Set(1)
	}
}

// order appends the replica indices to try, in preference order per the
// group's Balance policy: the healthy replicas first (sticky-preferred,
// round-robin rotated, or least-inflight sorted), then the cooling-down
// ones (still tried — a replica mid-cooldown beats the TEE mirror as a
// last resort).
func (g *ReplicaGroup) order(dst []int) []int {
	now := time.Now().UnixNano()
	up := func(r int) bool { return g.health[r].downUntil.Load() <= now }
	head := len(dst)
	switch g.balance {
	case BalanceRoundRobin:
		n := len(g.replicas)
		start := int(g.rr.Add(1) % uint64(n))
		for i := 0; i < n; i++ {
			if r := (start + i) % n; up(r) {
				dst = append(dst, r)
			}
		}
	case BalanceLeastInflight:
		for r := range g.replicas {
			if up(r) {
				dst = append(dst, r)
			}
		}
		// Stable insertion sort by in-flight count: replica counts are
		// tiny (R is single digits), and stability keeps index order as
		// the tie-break.
		for i := head + 1; i < len(dst); i++ {
			for j := i; j > head && g.inflight[dst[j]].Load() < g.inflight[dst[j-1]].Load(); j-- {
				dst[j], dst[j-1] = dst[j-1], dst[j]
			}
		}
	default: // BalanceSticky
		pref := int(g.preferred.Load())
		if up(pref) {
			dst = append(dst, pref)
		}
		for r := range g.replicas {
			if r != pref && up(r) {
				dst = append(dst, r)
			}
		}
	}
	// Cooling-down tail: preference ordering matters little here.
	for r := range g.replicas {
		if !up(r) {
			dst = append(dst, r)
		}
	}
	return dst
}

// Inflight reports the sub-operations currently running against replica r
// (for tests and inspection).
func (g *ReplicaGroup) Inflight(r int) int64 { return g.inflight[r].Load() }

// success records replica r answering: health resets and r becomes
// preferred.
func (g *ReplicaGroup) success(r int) {
	h := &g.health[r]
	h.consecFails.Store(0)
	h.downUntil.Store(0)
	g.preferred.Store(int32(r))
	if g.tel != nil {
		g.tel[r].healthyGa.Set(1)
	}
}

// failure records replica r refusing: the replica cools down for a
// window that grows with its consecutive-failure run (capped at 8x), so
// a flapping replica backs off harder than a one-off blip.
func (g *ReplicaGroup) failure(r int) {
	h := &g.health[r]
	n := h.consecFails.Add(1)
	if n > 8 {
		n = 8
	}
	h.downUntil.Store(time.Now().UnixNano() + int64(g.cooldown)*int64(n))
	if g.tel != nil {
		g.tel[r].healthyGa.Set(0)
	}
}

// do runs op against the replicas in preference order until one succeeds.
// Failures beyond the first replica count as failovers; when every
// replica refuses, the joined error carries each replica's failure. A
// canceled context aborts between attempts — the caller's budget, not a
// replica fault.
//
// When ctx carries an active trace span, each replica attempt runs under
// its own child span (the ctx handed to op carries it, so a wire client
// stitches the server's spans beneath the attempt), and a failover —
// moving past the first replica in the order — lands a typed
// replica_failover event on the enclosing span.
func (g *ReplicaGroup) do(ctx context.Context, op func(ctx context.Context, rep core.NDP) error) error {
	var errs []error
	span := telemetry.SpanFromContext(ctx)
	order := g.order(make([]int, 0, len(g.replicas)))
	for k, r := range order {
		if err := ctx.Err(); err != nil {
			return err
		}
		if k > 0 {
			if g.failovers != nil {
				g.failovers.Inc()
			}
			span.Eventf(telemetry.EventReplicaFailover,
				"shard %d: replica %d failed, failing over to replica %d", g.shard, order[k-1], r)
		}
		if g.tel != nil {
			g.tel[r].subops.Inc()
		}
		actx, aspan := ctx, (*telemetry.ActiveSpan)(nil)
		if span != nil {
			actx, aspan = span.StartChild(ctx, fmt.Sprintf("replica%d", r))
		}
		g.inflight[r].Add(1)
		err := op(actx, g.replicas[r])
		g.inflight[r].Add(-1)
		if err == nil {
			aspan.End()
			g.success(r)
			return nil
		}
		aspan.EndErr(err, telemetry.ErrClassTransport)
		if g.tel != nil {
			g.tel[r].failures.Inc()
		}
		g.failure(r)
		errs = append(errs, fmt.Errorf("replica %d: %w", r, err))
	}
	return fmt.Errorf("cluster: shard %d: every replica failed: %w", g.shard, errors.Join(errs...))
}

// Sum scatter-calls the shard's weighted sum with failover.
func (g *ReplicaGroup) Sum(ctx context.Context, geo core.Geometry, idx []int, weights []uint64) ([]uint64, error) {
	var res []uint64
	err := g.do(ctx, func(ctx context.Context, rep core.NDP) error {
		var err error
		res, err = callSum(ctx, rep, geo, idx, weights)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Tag is Sum for the tag half.
func (g *ReplicaGroup) Tag(ctx context.Context, geo core.Geometry, idx []int, weights []uint64) (field.Elem, error) {
	var res field.Elem
	err := g.do(ctx, func(ctx context.Context, rep core.NDP) error {
		var err error
		res, err = callTag(ctx, rep, geo, idx, weights)
		return err
	})
	if err != nil {
		return field.Zero, err
	}
	return res, nil
}

// Batch runs a sub-batch with failover. Batches are pure reads, so a
// replay against the next replica returns byte-identical partials.
func (g *ReplicaGroup) Batch(ctx context.Context, geo core.Geometry, reqs []core.BatchRequest, verify bool) ([]core.NDPBatchResult, error) {
	var res []core.NDPBatchResult
	err := g.do(ctx, func(ctx context.Context, rep core.NDP) error {
		bn, ok := rep.(core.BatchNDP)
		if !ok {
			return fmt.Errorf("cluster: shard %d replica has no batch support", g.shard)
		}
		var err error
		res, err = callBatch(ctx, bn, geo, reqs, verify)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Elem computes the shard's element-indexed partial Σ_k w_k·C[i_k][j_k]
// with failover. The wire protocol has no element op, so the group
// fetches each referenced row as a unit-weight whole-row sum — one
// batched exchange when the replica supports batches, per-row sums
// otherwise — and assembles the scalar on the trusted side; by
// linearity the result is byte-identical to what an honest NDP's
// element op would return. The fetch runs wholly against one replica
// and fails over as a unit.
func (g *ReplicaGroup) Elem(ctx context.Context, geo core.Geometry, idx, jdx []int, weights []uint64) (uint64, error) {
	var res uint64
	err := g.do(ctx, func(ctx context.Context, rep core.NDP) error {
		var err error
		res, err = elemViaRows(ctx, rep, geo, idx, jdx, weights)
		return err
	})
	if err != nil {
		return 0, err
	}
	return res, nil
}

// elemViaRows fetches each referenced row (weight 1) from one replica and
// reduces the element picks in the ring.
func elemViaRows(ctx context.Context, rep core.NDP, geo core.Geometry, idx, jdx []int, weights []uint64) (uint64, error) {
	r, err := ring.New(geo.Params.We)
	if err != nil {
		return 0, err
	}
	var acc uint64
	if bn, ok := rep.(core.BatchNDP); ok && bn.SupportsBatch(ctx) {
		reqs := make([]core.BatchRequest, len(idx))
		rows := make([]int, len(idx))
		ones := make([]uint64, len(idx))
		for k := range idx {
			rows[k] = idx[k]
			ones[k] = 1
			reqs[k] = core.BatchRequest{Idx: rows[k : k+1], Weights: ones[k : k+1]}
		}
		res, err := callBatch(ctx, bn, geo, reqs, false)
		if err != nil {
			return 0, err
		}
		if len(res) != len(idx) {
			return 0, fmt.Errorf("cluster: row fetch answered %d of %d rows", len(res), len(idx))
		}
		for k := range res {
			if res[k].Err != nil {
				return 0, res[k].Err
			}
			if len(res[k].Sums) != geo.Params.M {
				return 0, fmt.Errorf("cluster: row fetch returned %d columns, want %d", len(res[k].Sums), geo.Params.M)
			}
			acc += weights[k] * res[k].Sums[jdx[k]]
		}
		return r.Reduce(acc), nil
	}
	for k := range idx {
		row, err := callSum(ctx, rep, geo, idx[k:k+1], []uint64{1})
		if err != nil {
			return 0, err
		}
		if len(row) != geo.Params.M {
			return 0, fmt.Errorf("cluster: row fetch returned %d columns, want %d", len(row), geo.Params.M)
		}
		acc += weights[k] * row[jdx[k]]
	}
	return r.Reduce(acc), nil
}

// SupportsBatch reports whether every replica can serve batches — the
// group must be able to fail a sub-batch over to any replica.
func (g *ReplicaGroup) SupportsBatch(ctx context.Context) bool {
	for _, rep := range g.replicas {
		bn, ok := rep.(core.BatchNDP)
		if !ok || !bn.SupportsBatch(ctx) {
			return false
		}
	}
	return true
}

package cluster

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"secndp/internal/core"
	"secndp/internal/field"
	"secndp/internal/memory"
)

// provNDP is an in-process replica that can also receive provisioning
// writes — the test double for a remote transport during resharding.
type provNDP struct {
	*core.HonestNDP
}

func newProvNDP(sp *memory.Space) *provNDP { return &provNDP{&core.HonestNDP{Mem: sp}} }

func (p *provNDP) WriteBlobContext(_ context.Context, addr uint64, data []byte) error {
	p.Mem.Write(addr, data)
	return nil
}

func (p *provNDP) WriteECCContext(_ context.Context, dataAddr uint64, tag []byte) error {
	p.Mem.WriteECC(dataAddr, tag)
	return nil
}

func mustMap(t *testing.T, rows, shards int, strat Strategy, epoch uint64) *Map {
	t.Helper()
	m, err := NewMap(rows, shards, strat, epoch)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPlanReshardRange: a 2→4 range split moves exactly the back half of
// each old shard, coalesced into two long runs; 4→2 is its mirror image.
func TestPlanReshardRange(t *testing.T) {
	m2 := mustMap(t, 64, 2, RangeSharding, 1)
	m4 := mustMap(t, 64, 4, RangeSharding, 2)

	moves, err := PlanReshard(m2, m4)
	if err != nil {
		t.Fatal(err)
	}
	// Old: shard0 = [0,32), shard1 = [32,64). New: 16-row quarters.
	// Rows 16..31 move 0→1, rows 32..47 keep shard... no: new owner of
	// [32,48) is shard 2, of [48,64) shard 3. [0,16) stays on 0.
	want := []Move{{Lo: 16, Hi: 32, From: 0, To: 1}, {Lo: 32, Hi: 48, From: 1, To: 2}, {Lo: 48, Hi: 64, From: 1, To: 3}}
	if len(moves) != len(want) {
		t.Fatalf("moves = %+v, want %+v", moves, want)
	}
	for i := range want {
		if moves[i] != want[i] {
			t.Fatalf("move %d = %+v, want %+v", i, moves[i], want[i])
		}
	}

	back, err := PlanReshard(m4, mustMap(t, 64, 2, RangeSharding, 3))
	if err != nil {
		t.Fatal(err)
	}
	wantBack := []Move{{Lo: 16, Hi: 32, From: 1, To: 0}, {Lo: 32, Hi: 48, From: 2, To: 1}, {Lo: 48, Hi: 64, From: 3, To: 1}}
	for i := range wantBack {
		if back[i] != wantBack[i] {
			t.Fatalf("reverse move %d = %+v, want %+v", i, back[i], wantBack[i])
		}
	}
}

func TestPlanReshardValidation(t *testing.T) {
	m := mustMap(t, 8, 2, RangeSharding, 1)
	if _, err := PlanReshard(nil, m); err == nil {
		t.Fatal("nil old map accepted")
	}
	if _, err := PlanReshard(m, nil); err == nil {
		t.Fatal("nil new map accepted")
	}
	if _, err := PlanReshard(m, mustMap(t, 16, 2, RangeSharding, 2)); err == nil {
		t.Fatal("row-count change accepted")
	}
	// Identical maps: nothing moves.
	moves, err := PlanReshard(m, mustMap(t, 8, 2, RangeSharding, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Fatalf("identical maps planned %d moves", len(moves))
	}
}

// TestShipRun: shipped rows land byte-identical on the target space —
// data span plus tags under each placement — so a resharded replica is
// indistinguishable from a freshly provisioned one.
func TestShipRun(t *testing.T) {
	for _, placement := range []memory.TagPlacement{memory.TagSep, memory.TagColoc, memory.TagECC} {
		// Ver-ECC needs rows spanning enough cache lines to bank a full
		// tag in the ECC sideband; widen the rows for that placement.
		m := 16
		if placement == memory.TagECC {
			m = 32
		}
		s, err := core.NewScheme([]byte("k0k1k2k3k4k5k6k7"))
		if err != nil {
			t.Fatal(err)
		}
		geo := mkGeometry(placement, 64, m, 32)
		rng := rand.New(rand.NewSource(53))
		staging := memory.NewSpace()
		if _, err := s.EncryptTable(staging, geo, 1, boundedRows(rng, 64, m, 1<<20)); err != nil {
			t.Fatal(err)
		}
		fx := struct {
			geo     core.Geometry
			staging *memory.Space
		}{geo, staging}
		dst := memory.NewSpace()
		target := newProvNDP(dst)
		if err := ShipRun(context.Background(), fx.geo, fx.staging, 10, 30, target); err != nil {
			t.Fatal(err)
		}
		lay := fx.geo.Layout
		for i := 10; i < 30; i++ {
			base := lay.RowAddr(i)
			want := fx.staging.Snapshot(base, int(lay.RowStride()))
			got := dst.Snapshot(base, int(lay.RowStride()))
			if string(want) != string(got) {
				t.Fatalf("placement %v: row %d data differs after ship", placement, i)
			}
			switch placement {
			case memory.TagSep:
				ta := lay.TagAddr(i)
				if string(dst.Snapshot(ta, memory.TagBytes)) != string(fx.staging.Snapshot(ta, memory.TagBytes)) {
					t.Fatalf("placement %v: row %d tag differs after ship", placement, i)
				}
			case memory.TagECC:
				if string(dst.ReadECC(base, memory.TagBytes)) != string(fx.staging.ReadECC(base, memory.TagBytes)) {
					t.Fatalf("placement %v: row %d ECC tag differs after ship", placement, i)
				}
			}
		}
		// Empty range is a no-op, not an error.
		if err := ShipRun(context.Background(), fx.geo, fx.staging, 5, 5, target); err != nil {
			t.Fatal(err)
		}
	}
}

// reshardFixture builds a replicated cluster whose replicas are provNDPs
// (queryable and provisionable) over sparse windows of the fixture's
// staging image.
func reshardFixture(t *testing.T, numShards, numReplicas int) (*fixture, *NDP, []*ReplicaGroup) {
	t.Helper()
	fx := buildFixture(t, numShards, RangeSharding, memory.TagSep)
	groups := make([]*ReplicaGroup, numShards)
	for s := 0; s < numShards; s++ {
		reps := make([]core.NDP, numReplicas)
		for r := range reps {
			sp := memory.NewSpace()
			for _, run := range fx.smap.Runs(s) {
				target := newProvNDP(sp)
				if err := ShipRun(context.Background(), fx.geo, fx.staging, run[0], run[1], target); err != nil {
					t.Fatal(err)
				}
			}
			reps[r] = newProvNDP(sp)
		}
		g, err := NewGroup(s, reps, GroupConfig{})
		if err != nil {
			t.Fatal(err)
		}
		groups[s] = g
	}
	cnd, err := NewReplicated(fx.smap, groups, Options{Source: fx.staging})
	if err != nil {
		t.Fatal(err)
	}
	return fx, cnd, groups
}

// newGroupsFor builds replica groups for newMap: retained shard indices
// keep their old groups (the documented contract), new indices get fresh
// empty replicas that the reshard copy phase must fill.
func newGroupsFor(t *testing.T, fx *fixture, oldGroups []*ReplicaGroup, newMap *Map, numReplicas int) []*ReplicaGroup {
	t.Helper()
	groups := make([]*ReplicaGroup, newMap.NumShards())
	for s := range groups {
		if s < len(oldGroups) {
			groups[s] = oldGroups[s]
			continue
		}
		reps := make([]core.NDP, numReplicas)
		for r := range reps {
			reps[r] = newProvNDP(memory.NewSpace())
		}
		g, err := NewGroup(s, reps, GroupConfig{})
		if err != nil {
			t.Fatal(err)
		}
		groups[s] = g
	}
	return groups
}

func assertClusterOracle(t *testing.T, fx *fixture, cnd *NDP, seed int64) {
	t.Helper()
	oracle := &core.HonestNDP{Mem: fx.staging}
	rng := rand.New(rand.NewSource(seed))
	ctx := context.Background()
	for q := 0; q < 4; q++ {
		idx, w := randQuery(rng, 64, 7)
		sum, err := cnd.WeightedSumContext(ctx, fx.geo, idx, w)
		if err != nil {
			t.Fatal(err)
		}
		want := oracle.WeightedSum(fx.geo, idx, w)
		for j := range want {
			if sum[j] != want[j] {
				t.Fatalf("col %d: %d != %d", j, sum[j], want[j])
			}
		}
		tag, err := cnd.TagSumContext(ctx, fx.geo, idx, w)
		if err != nil {
			t.Fatal(err)
		}
		if tag != oracle.TagSum(fx.geo, idx, w) {
			t.Fatal("tag mismatch")
		}
	}
}

// TestReshardLive: 2→4 with 2 replicas per shard. Moved rows ship to
// every replica of their new owners in small chunks; after the flip the
// cluster answers byte-identically to the pre-reshard oracle and the
// epoch has advanced.
func TestReshardLive(t *testing.T) {
	fx, cnd, oldGroups := reshardFixture(t, 2, 2)
	assertClusterOracle(t, fx, cnd, 41)

	newMap := mustMap(t, 64, 4, RangeSharding, 2)
	groups := newGroupsFor(t, fx, oldGroups, newMap, 2)
	err := cnd.Reshard(context.Background(), fx.geo, newMap, groups,
		ReshardOptions{ChunkRows: 5, Pause: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if cnd.Epoch() != 2 {
		t.Fatalf("epoch = %d after reshard, want 2", cnd.Epoch())
	}
	if cnd.Map().NumShards() != 4 {
		t.Fatalf("live map has %d shards, want 4", cnd.Map().NumShards())
	}
	assertClusterOracle(t, fx, cnd, 43)

	// And back down: 4→2 retains shards 0 and 1.
	backMap := mustMap(t, 64, 2, RangeSharding, 3)
	backGroups := []*ReplicaGroup{groups[0], groups[1]}
	if err := cnd.Reshard(context.Background(), fx.geo, backMap, backGroups, ReshardOptions{}); err != nil {
		t.Fatal(err)
	}
	if cnd.Epoch() != 3 {
		t.Fatalf("epoch = %d after second reshard, want 3", cnd.Epoch())
	}
	assertClusterOracle(t, fx, cnd, 47)
}

// TestReshardValidationInternal: stale epochs, group-count mismatches,
// nil groups, and a missing source are all rejected before anything
// ships or flips.
func TestReshardValidationInternal(t *testing.T) {
	fx, cnd, oldGroups := reshardFixture(t, 2, 1)
	ctx := context.Background()

	if err := cnd.Reshard(ctx, fx.geo, nil, nil, ReshardOptions{}); err == nil {
		t.Fatal("nil map accepted")
	}
	sameEpoch := mustMap(t, 64, 2, RangeSharding, 1)
	if err := cnd.Reshard(ctx, fx.geo, sameEpoch, oldGroups, ReshardOptions{}); err == nil {
		t.Fatal("non-advancing epoch accepted")
	}
	next := mustMap(t, 64, 4, RangeSharding, 2)
	if err := cnd.Reshard(ctx, fx.geo, next, oldGroups, ReshardOptions{}); err == nil {
		t.Fatal("group-count mismatch accepted")
	}
	groups := newGroupsFor(t, fx, oldGroups, next, 1)
	groups[3] = nil
	if err := cnd.Reshard(ctx, fx.geo, next, groups, ReshardOptions{}); err == nil {
		t.Fatal("nil group accepted")
	}
	if cnd.Epoch() != 1 {
		t.Fatalf("failed reshards moved the epoch to %d", cnd.Epoch())
	}

	// No source: the copy phase has nothing to stream from.
	fx2 := buildFixture(t, 2, RangeSharding, memory.TagSep)
	g2 := make([]*ReplicaGroup, 2)
	for s := range g2 {
		g, err := NewGroup(s, []core.NDP{fx2.shards[s]}, GroupConfig{})
		if err != nil {
			t.Fatal(err)
		}
		g2[s] = g
	}
	bare, err := NewReplicated(fx2.smap, g2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	next2 := mustMap(t, 64, 4, RangeSharding, 2)
	if err := bare.Reshard(ctx, fx2.geo, next2, newGroupsFor(t, fx2, g2, next2, 1), ReshardOptions{}); err == nil {
		t.Fatal("reshard without a source accepted")
	}
}

// TestReshardStaleGatherReissue: a gather that straddles the epoch flip
// discards its stale partials and re-issues against the new topology —
// the caller sees one correct answer (Reshard's drain waits the straddler
// out, so the two synchronize exactly as documented).
func TestReshardStaleGatherReissue(t *testing.T) {
	fx, cnd, groups := reshardFixture(t, 2, 1)

	// Gate shard 1's replica so the test can hold one gather mid-flight.
	hold := make(chan struct{})
	held := make(chan struct{})
	var once sync.Once
	slow := &gatedNDP{inner: groups[1].Replica(0), gate: func() {
		once.Do(func() {
			close(held)
			<-hold
		})
	}}
	slowGroup, err := NewGroup(1, []core.NDP{slow}, GroupConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cnd, err = NewReplicated(fx.smap, []*ReplicaGroup{groups[0], slowGroup}, Options{Source: fx.staging})
	if err != nil {
		t.Fatal(err)
	}

	idx := []int{2, 40} // spans both shards
	w := []uint64{3, 5}
	type res struct {
		sum []uint64
		err error
	}
	done := make(chan res, 1)
	go func() {
		s, err := cnd.WeightedSumContext(context.Background(), fx.geo, idx, w)
		done <- res{s, err}
	}()
	<-held

	// Flip the epoch under the held gather. Same layout (no rows move),
	// same groups — only the epoch advances. Reshard's drain blocks on
	// the straddler, so it runs concurrently and the hold is released
	// once the flip is visible.
	newMap := mustMap(t, 64, 2, RangeSharding, 2)
	reshardDone := make(chan error, 1)
	go func() {
		reshardDone <- cnd.Reshard(context.Background(), fx.geo, newMap,
			[]*ReplicaGroup{groups[0], slowGroup}, ReshardOptions{})
	}()
	for cnd.Epoch() != 2 {
		time.Sleep(100 * time.Microsecond)
	}
	close(hold)
	if err := <-reshardDone; err != nil {
		t.Fatal(err)
	}

	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	oracle := &core.HonestNDP{Mem: fx.staging}
	want := oracle.WeightedSum(fx.geo, idx, w)
	for j := range want {
		if r.sum[j] != want[j] {
			t.Fatalf("col %d: %d != %d (stale partials leaked?)", j, r.sum[j], want[j])
		}
	}
}

// gatedNDP delays the first weighted-sum call via gate, then delegates.
// It deliberately implements only the legacy interface so the cluster's
// panic-recovering callers drive it.
type gatedNDP struct {
	inner core.NDP
	gate  func()
}

func (g *gatedNDP) WeightedSum(geo core.Geometry, idx []int, w []uint64) []uint64 {
	g.gate()
	return g.inner.WeightedSum(geo, idx, w)
}

func (g *gatedNDP) WeightedSumElem(geo core.Geometry, idx, jdx []int, w []uint64) uint64 {
	return g.inner.WeightedSumElem(geo, idx, jdx, w)
}

func (g *gatedNDP) TagSum(geo core.Geometry, idx []int, w []uint64) field.Elem {
	return g.inner.TagSum(geo, idx, w)
}

package cluster

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"secndp/internal/core"
	"secndp/internal/field"
	"secndp/internal/memory"
	"secndp/internal/telemetry"
)

func mkGeometry(placement memory.TagPlacement, n, m int, we uint) core.Geometry {
	return core.Geometry{
		Layout: memory.Layout{
			Placement: placement,
			Base:      0x10000,
			TagBase:   0x800000,
			NumRows:   n,
			RowBytes:  m * int(we) / 8,
		},
		Params: core.Params{We: we, M: m},
	}
}

func boundedRows(rng *rand.Rand, n, m int, bound uint64) [][]uint64 {
	rows := make([][]uint64, n)
	for i := range rows {
		rows[i] = make([]uint64, m)
		for j := range rows[i] {
			rows[i][j] = rng.Uint64() % bound
		}
	}
	return rows
}

// shardSpaces splits one staging image into per-shard sparse windows,
// mirroring the facade's provisioning framing: per run, the data span
// (with co-located tags via the stride), plus separate tags or per-row
// ECC sidebands by placement.
func shardSpaces(geo core.Geometry, staging *memory.Space, smap *Map) []*memory.Space {
	lay := geo.Layout
	out := make([]*memory.Space, smap.NumShards())
	for s := range out {
		sp := memory.NewSpace()
		for _, run := range smap.Runs(s) {
			lo, hi := run[0], run[1]
			base := lay.RowAddr(lo)
			span := lay.RowAddr(hi-1) + lay.RowStride() - base
			sp.Write(base, staging.Snapshot(base, int(span)))
			switch lay.Placement {
			case memory.TagSep:
				tbase := lay.TagAddr(lo)
				sp.Write(tbase, staging.Snapshot(tbase, (hi-lo)*memory.TagBytes))
			case memory.TagECC:
				for i := lo; i < hi; i++ {
					sp.WriteECC(lay.RowAddr(i), staging.ReadECC(lay.RowAddr(i), memory.TagBytes))
				}
			}
		}
		out[s] = sp
	}
	return out
}

type fixture struct {
	geo     core.Geometry
	tab     *core.Table
	rows    [][]uint64
	staging *memory.Space
	smap    *Map
	shards  []core.NDP
}

func buildFixture(t *testing.T, numShards int, strat Strategy, placement memory.TagPlacement) *fixture {
	t.Helper()
	s, err := core.NewScheme([]byte("k0k1k2k3k4k5k6k7"))
	if err != nil {
		t.Fatal(err)
	}
	geo := mkGeometry(placement, 64, 16, 32)
	rng := rand.New(rand.NewSource(61))
	rows := boundedRows(rng, 64, 16, 1<<20)
	staging := memory.NewSpace()
	tab, err := s.EncryptTable(staging, geo, 1, rows)
	if err != nil {
		t.Fatal(err)
	}
	smap, err := NewMap(64, numShards, strat, 1)
	if err != nil {
		t.Fatal(err)
	}
	spaces := shardSpaces(geo, staging, smap)
	shards := make([]core.NDP, numShards)
	for i := range shards {
		shards[i] = &core.HonestNDP{Mem: spaces[i]}
	}
	return &fixture{geo: geo, tab: tab, rows: rows, staging: staging, smap: smap, shards: shards}
}

func randQuery(rng *rand.Rand, n, k int) ([]int, []uint64) {
	idx := make([]int, k)
	weights := make([]uint64, k)
	for i := range idx {
		idx[i] = rng.Intn(n)
		weights[i] = 1 + rng.Uint64()%8
	}
	return idx, weights
}

// TestClusterEquivalence is the oracle: for 1/2/4/8 shards under both
// strategies, the cluster's data and tag partial sums — and the full
// verified query through the trusted engine — are byte-identical to a
// single NDP holding every row.
func TestClusterEquivalence(t *testing.T) {
	for _, strat := range []Strategy{RangeSharding, HashSharding} {
		for _, numShards := range []int{1, 2, 4, 8} {
			fx := buildFixture(t, numShards, strat, memory.TagSep)
			cnd, err := New(fx.smap, fx.shards, Options{})
			if err != nil {
				t.Fatal(err)
			}
			single := &core.HonestNDP{Mem: fx.staging}
			rng := rand.New(rand.NewSource(int64(62 + numShards)))
			ctx := context.Background()
			for q := 0; q < 10; q++ {
				idx, weights := randQuery(rng, 64, 1+rng.Intn(20))

				got, err := cnd.WeightedSumContext(ctx, fx.geo, idx, weights)
				if err != nil {
					t.Fatal(err)
				}
				want := single.WeightedSum(fx.geo, idx, weights)
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("%v/%d shards: sum col %d: %d != %d", strat, numShards, j, got[j], want[j])
					}
				}

				gotTag, err := cnd.TagSumContext(ctx, fx.geo, idx, weights)
				if err != nil {
					t.Fatal(err)
				}
				if wantTag := single.TagSum(fx.geo, idx, weights); gotTag != wantTag {
					t.Fatalf("%v/%d shards: tag sum %v != %v", strat, numShards, gotTag, wantTag)
				}

				res, err := fx.tab.QueryVerified(cnd, idx, weights)
				if err != nil {
					t.Fatal(err)
				}
				wantRes, err := fx.tab.QueryVerified(single, idx, weights)
				if err != nil {
					t.Fatal(err)
				}
				for j := range wantRes {
					if res[j] != wantRes[j] {
						t.Fatalf("%v/%d shards: verified col %d: %d != %d", strat, numShards, j, res[j], wantRes[j])
					}
				}
			}
		}
	}
}

// TestClusterBatchEquivalence checks the batched scatter-gather against
// the single-NDP batch pipeline, including tags.
func TestClusterBatchEquivalence(t *testing.T) {
	for _, numShards := range []int{2, 4} {
		fx := buildFixture(t, numShards, HashSharding, memory.TagSep)
		cnd, err := New(fx.smap, fx.shards, Options{})
		if err != nil {
			t.Fatal(err)
		}
		single := &core.HonestNDP{Mem: fx.staging}
		rng := rand.New(rand.NewSource(63))
		reqs := make([]core.BatchRequest, 24)
		for i := range reqs {
			reqs[i].Idx, reqs[i].Weights = randQuery(rng, 64, 1+rng.Intn(12))
		}
		reqs = append(reqs, core.BatchRequest{}) // empty request → zero sums
		ctx := context.Background()
		got, err := cnd.WeightedTagSumBatch(ctx, fx.geo, reqs, true)
		if err != nil {
			t.Fatal(err)
		}
		want, err := single.WeightedTagSumBatch(ctx, fx.geo, reqs, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%d results, want %d", len(got), len(want))
		}
		for i := range want {
			if (got[i].Err == nil) != (want[i].Err == nil) {
				t.Fatalf("request %d: err %v vs %v", i, got[i].Err, want[i].Err)
			}
			if got[i].Err != nil {
				continue
			}
			for j := range want[i].Sums {
				if got[i].Sums[j] != want[i].Sums[j] {
					t.Fatalf("request %d col %d: %d != %d", i, j, got[i].Sums[j], want[i].Sums[j])
				}
			}
			if got[i].Tag != want[i].Tag {
				t.Fatalf("request %d: tag %v != %v", i, got[i].Tag, want[i].Tag)
			}
		}
	}
}

// failNDP fails every operation the way a dead transport does: context
// calls return errors, legacy calls panic.
type failNDP struct{}

func (failNDP) WeightedSum(core.Geometry, []int, []uint64) []uint64 {
	panic("failNDP: down")
}
func (failNDP) WeightedSumElem(core.Geometry, []int, []int, []uint64) uint64 {
	panic("failNDP: down")
}
func (failNDP) TagSum(core.Geometry, []int, []uint64) field.Elem {
	panic("failNDP: down")
}
func (failNDP) WeightedSumContext(context.Context, core.Geometry, []int, []uint64) ([]uint64, error) {
	return nil, errors.New("failNDP: down")
}
func (failNDP) TagSumContext(context.Context, core.Geometry, []int, []uint64) (field.Elem, error) {
	return field.Zero, errors.New("failNDP: down")
}
func (failNDP) SupportsBatch(context.Context) bool { return true }
func (failNDP) WeightedTagSumBatch(context.Context, core.Geometry, []core.BatchRequest, bool) ([]core.NDPBatchResult, error) {
	return nil, errors.New("failNDP: down")
}

// TestMirrorFill kills one shard: with the mirror attached the gather
// still answers exactly the single-NDP result, verification passes, and
// the context flag names the filled shard; without a mirror the gather
// fails naming the shard.
func TestMirrorFill(t *testing.T) {
	fx := buildFixture(t, 4, RangeSharding, memory.TagSep)
	fx.shards[2] = failNDP{}

	reg := telemetry.NewRegistry()
	cnd, err := New(fx.smap, fx.shards, Options{Mirror: fx.staging})
	if err != nil {
		t.Fatal(err)
	}
	cnd.Instrument(reg)
	single := &core.HonestNDP{Mem: fx.staging}
	idx := []int{0, 17, 33, 40, 63} // rows 33, 40 live on shard 2 (chunk 16)
	weights := []uint64{1, 2, 3, 4, 5}

	ctx, flag := WithFlag(context.Background())
	res, err := fx.tab.QueryCtx(ctx, cnd, idx, weights, core.QueryOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fx.tab.QueryVerified(single, idx, weights)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if res[j] != want[j] {
			t.Fatalf("filled col %d: %d != %d", j, res[j], want[j])
		}
	}
	filled := flag.Filled()
	if len(filled) != 1 || filled[0] != 2 {
		t.Fatalf("filled shards: %v, want [2]", filled)
	}
	if !flag.Any() {
		t.Fatal("flag.Any() = false after fill")
	}

	// Without a mirror, the same query fails and the error names shard 2.
	bare, err := New(fx.smap, fx.shards, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = bare.WeightedSumContext(context.Background(), fx.geo, idx, weights)
	if err == nil || !strings.Contains(err.Error(), "shard 2") {
		t.Fatalf("mirrorless gather: %v", err)
	}
}

// TestMirrorFillBatch kills one shard mid-batch and checks the filled
// batch equals the single-NDP batch, with the flag set.
func TestMirrorFillBatch(t *testing.T) {
	fx := buildFixture(t, 4, RangeSharding, memory.TagSep)
	fx.shards[1] = failNDP{}
	cnd, err := New(fx.smap, fx.shards, Options{Mirror: fx.staging})
	if err != nil {
		t.Fatal(err)
	}
	single := &core.HonestNDP{Mem: fx.staging}
	rng := rand.New(rand.NewSource(64))
	reqs := make([]core.BatchRequest, 16)
	for i := range reqs {
		reqs[i].Idx, reqs[i].Weights = randQuery(rng, 64, 8)
	}
	ctx, flag := WithFlag(context.Background())
	got, err := cnd.WeightedTagSumBatch(ctx, fx.geo, reqs, true)
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.WeightedTagSumBatch(context.Background(), fx.geo, reqs, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i].Sums {
			if got[i].Sums[j] != want[i].Sums[j] {
				t.Fatalf("request %d col %d: %d != %d", i, j, got[i].Sums[j], want[i].Sums[j])
			}
		}
		if got[i].Tag != want[i].Tag {
			t.Fatalf("request %d: tag mismatch", i)
		}
	}
	if filled := flag.Filled(); len(filled) != 1 || filled[0] != 1 {
		t.Fatalf("filled shards: %v, want [1]", filled)
	}

	// Batch-level failure without a mirror.
	bare, _ := New(fx.smap, fx.shards, Options{})
	if _, err := bare.WeightedTagSumBatch(context.Background(), fx.geo, reqs, true); err == nil {
		t.Fatal("mirrorless batch gather succeeded with a dead shard")
	}
}

// TestLocateFault corrupts one shard's memory and checks the bisection
// pins the verification failure on exactly that shard.
func TestLocateFault(t *testing.T) {
	fx := buildFixture(t, 8, RangeSharding, memory.TagSep)
	spaces := shardSpaces(fx.geo, fx.staging, fx.smap)
	for i := range fx.shards {
		fx.shards[i] = &core.HonestNDP{Mem: spaces[i]}
	}
	// Corrupt a row owned by shard 5 (chunk = 8 → rows 40..47).
	spaces[5].FlipBit(fx.geo.Layout.RowAddr(42), 3)
	cnd, err := New(fx.smap, fx.shards, Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, 64)
	weights := make([]uint64, 64)
	for i := range idx {
		idx[i] = i
		weights[i] = 1
	}
	_, qerr := fx.tab.QueryCtx(context.Background(), cnd, idx, weights, core.QueryOptions{Verify: true})
	if !errors.Is(qerr, core.ErrVerification) {
		t.Fatalf("corrupted query: %v", qerr)
	}
	bad, err := cnd.LocateFault(context.Background(), fx.tab, idx, weights, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0] != 5 {
		t.Fatalf("located %v, want [5]", bad)
	}
}

// TestClusterTelemetry checks the per-shard series land on the registry.
func TestClusterTelemetry(t *testing.T) {
	fx := buildFixture(t, 2, RangeSharding, memory.TagSep)
	reg := telemetry.NewRegistry()
	cnd, err := New(fx.smap, fx.shards, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cnd.Instrument(reg)
	idx, weights := []int{0, 63}, []uint64{1, 1}
	if _, err := cnd.WeightedSumContext(context.Background(), fx.geo, idx, weights); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	got := map[string]bool{}
	for _, c := range snap.Counters {
		got[c.Name] = true
	}
	for _, h := range snap.Histograms {
		got[h.Name] = true
	}
	for _, name := range []string{
		"secndp_cluster_gathers_total",
		"secndp_cluster_shard0_subops_total",
		"secndp_cluster_shard1_subops_total",
		"secndp_cluster_shard0_seconds",
	} {
		if !got[name] {
			t.Fatalf("metric %s missing from snapshot", name)
		}
	}
}

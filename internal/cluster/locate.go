package cluster

import (
	"context"
	"errors"

	"secndp/internal/core"
)

// LocateFault isolates which shard(s) contributed corrupted partials
// after a verified query was rejected. The aggregated check covers the
// whole gather, so a rejection only says "some shard lied"; this
// bisection re-runs verified sub-queries over halves of the shard list —
// each half's union of sub-queries is itself a well-formed smaller query
// whose verification is independent — until the failing shard(s) are
// pinned down. Because every row lives on exactly one shard, a half
// containing only honest shards verifies and a half containing a
// corrupt shard fails, so the recursion terminates at the culprits.
//
// The diagnosis is best-effort: the re-queries give a compromised shard
// a second chance to answer honestly (in which case it evades
// localization — but the original result was still rejected, so nothing
// unverified escapes). Transport errors during localization abort it;
// whatever was already isolated is returned alongside the error.
func (n *NDP) LocateFault(ctx context.Context, tab *core.Table, idx []int, weights []uint64, opts core.QueryOptions) ([]int, error) {
	subs := n.Map().Split(idx, weights)
	if len(subs) == 0 {
		return nil, nil
	}
	opts.Verify = true
	opts.Phases = nil
	opts.Stats = nil

	// check runs one verified query over the union of subs[lo:hi).
	// Splitting the union re-derives exactly subs[lo:hi) (each row maps
	// to its one owning shard), so only those shards see traffic.
	check := func(lo, hi int) (ok bool, err error) {
		total := 0
		for _, s := range subs[lo:hi] {
			total += len(s.Idx)
		}
		ci := make([]int, 0, total)
		cw := make([]uint64, 0, total)
		for _, s := range subs[lo:hi] {
			ci = append(ci, s.Idx...)
			cw = append(cw, s.Weights...)
		}
		_, qerr := tab.QueryCtx(ctx, n, ci, cw, opts)
		if qerr == nil {
			return true, nil
		}
		if errors.Is(qerr, core.ErrVerification) {
			return false, nil
		}
		return false, qerr
	}

	var bad []int
	var abort error
	var bisect func(lo, hi int)
	bisect = func(lo, hi int) {
		if abort != nil {
			return
		}
		if hi-lo == 1 {
			bad = append(bad, subs[lo].Shard)
			return
		}
		mid := (lo + hi) / 2
		for _, half := range [][2]int{{lo, mid}, {mid, hi}} {
			ok, err := check(half[0], half[1])
			if err != nil {
				abort = err
				return
			}
			if !ok {
				bisect(half[0], half[1])
			}
		}
	}
	if len(subs) == 1 {
		// One shard served the whole query; the rejection already names it.
		return []int{subs[0].Shard}, nil
	}
	bisect(0, len(subs))
	return bad, abort
}

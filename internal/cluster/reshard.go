package cluster

import (
	"context"
	"fmt"
	"time"

	"secndp/internal/core"
	"secndp/internal/memory"
	"secndp/internal/telemetry"
)

// This file is the live-resharding half of the cluster layer: a planner
// that diffs two shard maps into the exact set of moved rows, a chunked
// rate-limited shipper that streams those rows' ciphertext+tags to
// their new owners from the TEE-held source image, and the epoch flip —
// queries serve from the old topology throughout the copy, the new
// topology is published with one atomic store, and in-flight gathers
// that straddled the flip discard their stale partials and re-issue
// (the contract documented on Map). Rows are never deleted from their
// old owners: shards hold only ciphertext and tags, a stale copy at an
// unchanged (addr, version) is harmless surplus the new map simply
// stops addressing, and the aggregated MAC check rejects any attempt to
// serve rows a shard should no longer answer for.

// Move is one contiguous run of rows [Lo, Hi) changing owner from shard
// From (under the old map) to shard To (under the new map).
type Move struct {
	Lo, Hi   int
	From, To int
}

// Rows returns the number of rows the move covers.
func (mv Move) Rows() int { return mv.Hi - mv.Lo }

// PlanReshard diffs two shard maps over the same row space into the
// minimal move list: exactly the rows whose owner changed, coalesced
// into maximal contiguous runs with a common (From, To) pair, in
// increasing row order. Rows keeping their owner never appear; no row
// appears twice. Runs are the shipping unit — under range sharding a
// whole reshard collapses into a handful of long moves.
func PlanReshard(old, next *Map) ([]Move, error) {
	if old == nil || next == nil {
		return nil, fmt.Errorf("cluster: reshard plan needs two maps")
	}
	if old.NumRows() != next.NumRows() {
		return nil, fmt.Errorf("cluster: reshard cannot change the row count (%d -> %d)", old.NumRows(), next.NumRows())
	}
	var moves []Move
	cur := Move{Lo: -1}
	for i := 0; i < old.NumRows(); i++ {
		from, to := old.Shard(i), next.Shard(i)
		if from == to {
			if cur.Lo >= 0 {
				moves = append(moves, cur)
				cur.Lo = -1
			}
			continue
		}
		if cur.Lo >= 0 && cur.From == from && cur.To == to && cur.Hi == i {
			cur.Hi = i + 1
			continue
		}
		if cur.Lo >= 0 {
			moves = append(moves, cur)
		}
		cur = Move{Lo: i, Hi: i + 1, From: from, To: to}
	}
	if cur.Lo >= 0 {
		moves = append(moves, cur)
	}
	return moves, nil
}

// BlobWriter is the provisioning half of a shard transport: the two
// idempotent writes that place ciphertext and side-band tags at global
// addresses. remote.Transport satisfies it; in-process test fixtures
// implement it over a memory.Space.
type BlobWriter interface {
	WriteBlobContext(ctx context.Context, addr uint64, data []byte) error
	WriteECCContext(ctx context.Context, dataAddr uint64, tag []byte) error
}

// ShipRun streams rows [lo, hi) of the table image in src to one
// writer, at their global addresses: one blob write for the data span
// (which includes co-located tags), plus the tag span for Ver-sep or
// per-row ECC writes for Ver-ECC. It is the single shipping primitive
// under both initial provisioning and live resharding — a shard's
// memory is always a sparse window of the one staging image.
func ShipRun(ctx context.Context, geo core.Geometry, src *memory.Space, lo, hi int, w BlobWriter) error {
	if lo >= hi {
		return nil
	}
	lay := geo.Layout
	base := lay.RowAddr(lo)
	span := lay.RowAddr(hi-1) + lay.RowStride() - base
	if err := w.WriteBlobContext(ctx, base, src.Snapshot(base, int(span))); err != nil {
		return err
	}
	switch lay.Placement {
	case memory.TagSep:
		tbase := lay.TagAddr(lo)
		tspan := (hi - lo) * memory.TagBytes
		if err := w.WriteBlobContext(ctx, tbase, src.Snapshot(tbase, tspan)); err != nil {
			return err
		}
	case memory.TagECC:
		for i := lo; i < hi; i++ {
			if err := w.WriteECCContext(ctx, lay.RowAddr(i), src.ReadECC(lay.RowAddr(i), memory.TagBytes)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReshardOptions tunes the streaming copy phase of a reshard.
type ReshardOptions struct {
	// ChunkRows caps the rows shipped per write burst; long moves split
	// into chunks this size so the copy never monopolizes a shard's
	// ingest. <= 0 selects 4096.
	ChunkRows int
	// Pause is an optional sleep between chunks — the rate limiter for
	// resharding under live traffic. 0 ships back-to-back.
	Pause time.Duration
}

// DefaultReshardChunkRows is the chunk size used when ReshardOptions
// leaves it zero.
const DefaultReshardChunkRows = 4096

// Reshard migrates the cluster to a new shard map live. The copy phase
// streams every moved row's ciphertext+tags from the TEE source image
// (Options.Source) to all replicas of its new owner, in rate-limited
// chunks, while queries continue to serve from the old topology; then
// the new topology — newMap paired with groups, one replica group per
// new shard — is published atomically and the old epoch is drained:
// Reshard returns only when no gather still runs against the old
// topology, so the caller may retire the old groups' transports.
// Gathers in flight across the flip discard their stale partials and
// re-issue against the new topology; queries are therefore never
// blocked for longer than one epoch drain and never mix partials from
// two epochs.
//
// newMap must cover the same rows as the live map and carry a strictly
// newer epoch. Shards whose index is retained across the maps are
// assumed to keep their servers (their unmoved rows are not re-shipped);
// a caller that points a retained shard at a fresh server must
// re-provision instead. Violations cannot corrupt results — a shard
// missing rows fails the aggregated MAC check — but they fail queries
// until fixed.
//
// One Reshard runs at a time; concurrent calls serialize. On a copy
// error the live topology is untouched and the reshard is abandoned —
// partially shipped rows are harmless surplus on their target shards.
func (n *NDP) Reshard(ctx context.Context, geo core.Geometry, newMap *Map, groups []*ReplicaGroup, opts ReshardOptions) error {
	n.reshardMu.Lock()
	defer n.reshardMu.Unlock()

	old := n.cur.Load()
	if newMap == nil {
		return fmt.Errorf("cluster: reshard needs a new shard map")
	}
	if newMap.Epoch() <= old.smap.Epoch() {
		return fmt.Errorf("cluster: reshard epoch %d must exceed live epoch %d", newMap.Epoch(), old.smap.Epoch())
	}
	if len(groups) != newMap.NumShards() {
		return fmt.Errorf("cluster: %d replica groups for a %d-shard map", len(groups), newMap.NumShards())
	}
	for s, g := range groups {
		if g == nil {
			return fmt.Errorf("cluster: nil replica group for shard %d", s)
		}
	}
	if n.source == nil {
		return fmt.Errorf("cluster: reshard requires a TEE ciphertext source (Options.Source)")
	}
	moves, err := PlanReshard(old.smap, newMap)
	if err != nil {
		return err
	}
	total := 0
	for _, mv := range moves {
		total += mv.Rows()
	}
	n.reshardTotal.Store(int64(total))
	n.reshardDone.Store(0)

	// Copy phase: moved rows stream to every replica of their new owner
	// while the old topology keeps serving. The chunking bounds each
	// write burst; the pause rate-limits the whole migration.
	chunk := opts.ChunkRows
	if chunk <= 0 {
		chunk = DefaultReshardChunkRows
	}
	moved := 0
	span := telemetry.SpanFromContext(ctx)
	for _, mv := range moves {
		g := groups[mv.To]
		for lo := mv.Lo; lo < mv.Hi; lo += chunk {
			hi := lo + chunk
			if hi > mv.Hi {
				hi = mv.Hi
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			var cspan *telemetry.ActiveSpan
			if span != nil {
				cspan = span.Child(fmt.Sprintf("reshard_chunk_%d_%d", lo, hi))
				cspan.Eventf("chunk", "rows [%d,%d) -> shard %d (%d replicas)", lo, hi, mv.To, g.Size())
			}
			for r := 0; r < g.Size(); r++ {
				w, ok := g.Replica(r).(BlobWriter)
				if !ok {
					err := fmt.Errorf("cluster: reshard: shard %d replica %d cannot receive provisioning writes", mv.To, r)
					cspan.EndErr(err, telemetry.ErrClassInvalid)
					return err
				}
				if err := ShipRun(ctx, geo, n.source, lo, hi, w); err != nil {
					err = fmt.Errorf("cluster: reshard: shipping rows [%d,%d) to shard %d replica %d: %w", lo, hi, mv.To, r, err)
					cspan.EndErr(err, telemetry.ErrClassTransport)
					return err
				}
			}
			cspan.End()
			moved += hi - lo
			n.reshardDone.Store(int64(moved))
			if opts.Pause > 0 && hi < mv.Hi {
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(opts.Pause):
				}
			}
		}
	}

	// Flip: one atomic store publishes the new epoch. Gathers that
	// snapshotted the old topology notice on completion and re-issue.
	next := &topology{smap: newMap, groups: groups}
	n.instrumentTopology(next)
	n.cur.Store(next)
	if n.reshards != nil {
		n.reshards.Inc()
		n.reshardRows.Add(uint64(moved))
	}

	// Drain: wait out every gather still registered with the old epoch
	// so the caller can safely retire the old groups' transports.
	return n.gate.drain(ctx, old.smap.Epoch())
}

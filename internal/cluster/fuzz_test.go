package cluster

import (
	"testing"
)

// FuzzShardSplit drives the shard-map planner with arbitrary geometries
// and index lists and checks the partition invariants that the gather's
// correctness rests on: every (idx, weight) pair lands on exactly one
// sub-query, on its owning shard, in original relative order — so the
// per-shard partials re-add to the unsharded sum by linearity.
func FuzzShardSplit(f *testing.F) {
	f.Add(64, 4, 0, uint64(1), []byte{0, 1, 2, 3, 62, 63})
	f.Add(100, 7, 1, uint64(9), []byte{50, 50, 50, 0, 99})
	f.Add(1, 1, 0, uint64(2), []byte{0})
	f.Add(255, 16, 1, uint64(3), []byte{})
	f.Fuzz(func(t *testing.T, numRows, numShards, strat int, epoch uint64, raw []byte) {
		if numRows < 0 || numRows > 1<<16 || numShards <= 0 || numShards > 256 {
			t.Skip()
		}
		strategy := Strategy(strat & 1)
		m, err := NewMap(numRows, numShards, strategy, epoch)
		if err != nil {
			t.Fatalf("NewMap(%d, %d, %v): %v", numRows, numShards, strategy, err)
		}
		if m.Epoch() != epoch {
			t.Fatalf("epoch %d != %d", m.Epoch(), epoch)
		}
		if numRows == 0 {
			return
		}
		// Derive an in-range query from the raw bytes; weights vary with
		// position so order violations change the observable pairing.
		idx := make([]int, len(raw))
		weights := make([]uint64, len(raw))
		for k, b := range raw {
			idx[k] = int(b) % numRows
			weights[k] = uint64(b)<<8 | uint64(k&0xff)
		}

		subs := m.Split(idx, weights)
		total := 0
		cursor := make([]int, len(subs))
		prevShard := -1
		for si, sub := range subs {
			if sub.Shard <= prevShard || sub.Shard >= numShards {
				t.Fatalf("sub %d: shard %d after %d (of %d)", si, sub.Shard, prevShard, numShards)
			}
			prevShard = sub.Shard
			if len(sub.Idx) != len(sub.Weights) || len(sub.Idx) == 0 {
				t.Fatalf("shard %d: %d idx, %d weights", sub.Shard, len(sub.Idx), len(sub.Weights))
			}
			total += len(sub.Idx)
			for _, i := range sub.Idx {
				if m.Shard(i) != sub.Shard {
					t.Fatalf("row %d on shard %d, owned by %d", i, sub.Shard, m.Shard(i))
				}
			}
		}
		if total != len(idx) {
			t.Fatalf("%d pairs in, %d out", len(idx), total)
		}
		// Replay the original pair stream: each pair must be the next
		// unconsumed pair of its owning shard's sub-query.
		shardSub := make(map[int]int, len(subs))
		for si, sub := range subs {
			shardSub[sub.Shard] = si
		}
		for k := range idx {
			si, ok := shardSub[m.Shard(idx[k])]
			if !ok {
				t.Fatalf("row %d: owning shard %d has no sub-query", idx[k], m.Shard(idx[k]))
			}
			sub := subs[si]
			c := cursor[si]
			if c >= len(sub.Idx) || sub.Idx[c] != idx[k] || sub.Weights[c] != weights[k] {
				t.Fatalf("pair %d (row %d, weight %d) out of order on shard %d", k, idx[k], weights[k], sub.Shard)
			}
			cursor[si]++
		}

		// Runs partition the row space exactly once across shards.
		seen := 0
		for s := 0; s < numShards; s++ {
			for _, run := range m.Runs(s) {
				if run[0] < 0 || run[1] <= run[0] || run[1] > numRows {
					t.Fatalf("shard %d: bad run %v", s, run)
				}
				for i := run[0]; i < run[1]; i++ {
					if m.Shard(i) != s {
						t.Fatalf("run %v of shard %d holds row %d owned by %d", run, s, i, m.Shard(i))
					}
				}
				seen += run[1] - run[0]
			}
		}
		if seen != numRows {
			t.Fatalf("runs cover %d of %d rows", seen, numRows)
		}
	})
}

// FuzzReshardPlan drives the reshard planner with arbitrary old/new map
// pairs and checks the migration invariants: the plan covers exactly the
// rows whose owner changed (no retained row ships, no moved row is
// missed), no row appears twice, every move's (From, To) matches the
// maps, and runs are maximal — adjacent moves never share a (From, To)
// pair they could have coalesced into.
func FuzzReshardPlan(f *testing.F) {
	f.Add(64, 2, 4, 0, 0)
	f.Add(64, 4, 2, 0, 0)
	f.Add(100, 3, 7, 0, 1)
	f.Add(100, 7, 3, 1, 0)
	f.Add(1, 1, 1, 1, 1)
	f.Fuzz(func(t *testing.T, numRows, oldShards, newShards, oldStrat, newStrat int) {
		if numRows <= 0 || numRows > 1<<14 ||
			oldShards <= 0 || oldShards > 128 || newShards <= 0 || newShards > 128 {
			t.Skip()
		}
		old, err := NewMap(numRows, oldShards, Strategy(oldStrat&1), 1)
		if err != nil {
			t.Fatal(err)
		}
		next, err := NewMap(numRows, newShards, Strategy(newStrat&1), 2)
		if err != nil {
			t.Fatal(err)
		}
		moves, err := PlanReshard(old, next)
		if err != nil {
			t.Fatal(err)
		}
		covered := make([]bool, numRows)
		prevHi := -1
		for mi, mv := range moves {
			if mv.Lo < 0 || mv.Hi > numRows || mv.Lo >= mv.Hi {
				t.Fatalf("move %d: bad range [%d,%d)", mi, mv.Lo, mv.Hi)
			}
			if mv.Lo < prevHi {
				t.Fatalf("move %d: [%d,%d) overlaps or precedes previous (hi %d)", mi, mv.Lo, mv.Hi, prevHi)
			}
			if mi > 0 {
				p := moves[mi-1]
				if p.Hi == mv.Lo && p.From == mv.From && p.To == mv.To {
					t.Fatalf("moves %d and %d should have coalesced", mi-1, mi)
				}
			}
			prevHi = mv.Hi
			for i := mv.Lo; i < mv.Hi; i++ {
				if covered[i] {
					t.Fatalf("row %d planned twice", i)
				}
				covered[i] = true
				if old.Shard(i) != mv.From || next.Shard(i) != mv.To {
					t.Fatalf("row %d: move says %d->%d, maps say %d->%d",
						i, mv.From, mv.To, old.Shard(i), next.Shard(i))
				}
			}
		}
		for i := 0; i < numRows; i++ {
			if moved := old.Shard(i) != next.Shard(i); moved != covered[i] {
				t.Fatalf("row %d: owner change %v but planned %v", i, moved, covered[i])
			}
		}
	})
}

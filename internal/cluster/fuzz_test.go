package cluster

import (
	"testing"
)

// FuzzShardSplit drives the shard-map planner with arbitrary geometries
// and index lists and checks the partition invariants that the gather's
// correctness rests on: every (idx, weight) pair lands on exactly one
// sub-query, on its owning shard, in original relative order — so the
// per-shard partials re-add to the unsharded sum by linearity.
func FuzzShardSplit(f *testing.F) {
	f.Add(64, 4, 0, uint64(1), []byte{0, 1, 2, 3, 62, 63})
	f.Add(100, 7, 1, uint64(9), []byte{50, 50, 50, 0, 99})
	f.Add(1, 1, 0, uint64(2), []byte{0})
	f.Add(255, 16, 1, uint64(3), []byte{})
	f.Fuzz(func(t *testing.T, numRows, numShards, strat int, epoch uint64, raw []byte) {
		if numRows < 0 || numRows > 1<<16 || numShards <= 0 || numShards > 256 {
			t.Skip()
		}
		strategy := Strategy(strat & 1)
		m, err := NewMap(numRows, numShards, strategy, epoch)
		if err != nil {
			t.Fatalf("NewMap(%d, %d, %v): %v", numRows, numShards, strategy, err)
		}
		if m.Epoch() != epoch {
			t.Fatalf("epoch %d != %d", m.Epoch(), epoch)
		}
		if numRows == 0 {
			return
		}
		// Derive an in-range query from the raw bytes; weights vary with
		// position so order violations change the observable pairing.
		idx := make([]int, len(raw))
		weights := make([]uint64, len(raw))
		for k, b := range raw {
			idx[k] = int(b) % numRows
			weights[k] = uint64(b)<<8 | uint64(k&0xff)
		}

		subs := m.Split(idx, weights)
		total := 0
		cursor := make([]int, len(subs))
		prevShard := -1
		for si, sub := range subs {
			if sub.Shard <= prevShard || sub.Shard >= numShards {
				t.Fatalf("sub %d: shard %d after %d (of %d)", si, sub.Shard, prevShard, numShards)
			}
			prevShard = sub.Shard
			if len(sub.Idx) != len(sub.Weights) || len(sub.Idx) == 0 {
				t.Fatalf("shard %d: %d idx, %d weights", sub.Shard, len(sub.Idx), len(sub.Weights))
			}
			total += len(sub.Idx)
			for _, i := range sub.Idx {
				if m.Shard(i) != sub.Shard {
					t.Fatalf("row %d on shard %d, owned by %d", i, sub.Shard, m.Shard(i))
				}
			}
		}
		if total != len(idx) {
			t.Fatalf("%d pairs in, %d out", len(idx), total)
		}
		// Replay the original pair stream: each pair must be the next
		// unconsumed pair of its owning shard's sub-query.
		shardSub := make(map[int]int, len(subs))
		for si, sub := range subs {
			shardSub[sub.Shard] = si
		}
		for k := range idx {
			si, ok := shardSub[m.Shard(idx[k])]
			if !ok {
				t.Fatalf("row %d: owning shard %d has no sub-query", idx[k], m.Shard(idx[k]))
			}
			sub := subs[si]
			c := cursor[si]
			if c >= len(sub.Idx) || sub.Idx[c] != idx[k] || sub.Weights[c] != weights[k] {
				t.Fatalf("pair %d (row %d, weight %d) out of order on shard %d", k, idx[k], weights[k], sub.Shard)
			}
			cursor[si]++
		}

		// Runs partition the row space exactly once across shards.
		seen := 0
		for s := 0; s < numShards; s++ {
			for _, run := range m.Runs(s) {
				if run[0] < 0 || run[1] <= run[0] || run[1] > numRows {
					t.Fatalf("shard %d: bad run %v", s, run)
				}
				for i := run[0]; i < run[1]; i++ {
					if m.Shard(i) != s {
						t.Fatalf("run %v of shard %d holds row %d owned by %d", run, s, i, m.Shard(i))
					}
				}
				seen += run[1] - run[0]
			}
		}
		if seen != numRows {
			t.Fatalf("runs cover %d of %d rows", seen, numRows)
		}
	})
}

package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"secndp/internal/core"
)

func TestNewMapValidation(t *testing.T) {
	if _, err := NewMap(-1, 2, RangeSharding, 1); err == nil {
		t.Fatal("negative rows accepted")
	}
	if _, err := NewMap(8, 0, RangeSharding, 1); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := NewMap(8, 2, Strategy(99), 1); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	m, err := NewMap(8, 3, HashSharding, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 8 || m.NumShards() != 3 || m.Strategy() != HashSharding || m.Epoch() != 7 {
		t.Fatalf("accessors: %d rows, %d shards, %v, epoch %d", m.NumRows(), m.NumShards(), m.Strategy(), m.Epoch())
	}
}

func TestStrategyString(t *testing.T) {
	if RangeSharding.String() != "range" || HashSharding.String() != "hash" {
		t.Fatalf("%v / %v", RangeSharding, HashSharding)
	}
	if Strategy(42).String() != "Strategy(42)" {
		t.Fatalf("%v", Strategy(42))
	}
}

// TestRunsPartitionRows: over both strategies and assorted shapes, the
// per-shard runs are disjoint, sorted, in-range, and their union is
// exactly the rows Shard assigns to that shard.
func TestRunsPartitionRows(t *testing.T) {
	for _, strat := range []Strategy{RangeSharding, HashSharding} {
		for _, shape := range [][2]int{{0, 1}, {1, 1}, {5, 8}, {64, 1}, {64, 4}, {65, 4}, {100, 7}} {
			rows, shards := shape[0], shape[1]
			m, err := NewMap(rows, shards, strat, 1)
			if err != nil {
				t.Fatal(err)
			}
			owner := make([]int, rows)
			for i := 0; i < rows; i++ {
				owner[i] = m.Shard(i)
				if owner[i] < 0 || owner[i] >= shards {
					t.Fatalf("%v %dx%d: row %d → shard %d out of range", strat, rows, shards, i, owner[i])
				}
			}
			seen := make([]bool, rows)
			for s := 0; s < shards; s++ {
				prev := -1
				for _, run := range m.Runs(s) {
					lo, hi := run[0], run[1]
					if lo <= prev || hi <= lo || hi > rows {
						t.Fatalf("%v %dx%d shard %d: bad run [%d,%d) after %d", strat, rows, shards, s, lo, hi, prev)
					}
					prev = hi - 1
					for i := lo; i < hi; i++ {
						if owner[i] != s {
							t.Fatalf("%v %dx%d: run of shard %d contains row %d owned by %d", strat, rows, shards, s, i, owner[i])
						}
						seen[i] = true
					}
				}
			}
			for i, ok := range seen {
				if !ok {
					t.Fatalf("%v %dx%d: row %d in no run", strat, rows, shards, i)
				}
			}
		}
	}
}

func TestShardPanicsOutOfRange(t *testing.T) {
	m, _ := NewMap(8, 2, RangeSharding, 1)
	for _, i := range []int{-1, 8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Shard(%d) did not panic", i)
				}
			}()
			m.Shard(i)
		}()
	}
}

// TestSplitPartition: every (idx, weight) pair lands on exactly one
// sub-query, on the owning shard, with relative order preserved.
func TestSplitPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, strat := range []Strategy{RangeSharding, HashSharding} {
		m, _ := NewMap(64, 4, strat, 1)
		idx := make([]int, 40)
		weights := make([]uint64, 40)
		for k := range idx {
			idx[k] = rng.Intn(64)
			weights[k] = rng.Uint64()
		}
		subs := m.Split(idx, weights)
		type pair struct {
			i int
			w uint64
		}
		var rejoined []pair
		prevShard := -1
		for _, sub := range subs {
			if sub.Shard <= prevShard {
				t.Fatalf("%v: shards out of order: %d after %d", strat, sub.Shard, prevShard)
			}
			prevShard = sub.Shard
			if len(sub.Idx) == 0 || len(sub.Idx) != len(sub.Weights) {
				t.Fatalf("%v: shard %d sub-query shape %d/%d", strat, sub.Shard, len(sub.Idx), len(sub.Weights))
			}
			for k, i := range sub.Idx {
				if m.Shard(i) != sub.Shard {
					t.Fatalf("%v: row %d on shard %d's sub-query, owned by %d", strat, i, sub.Shard, m.Shard(i))
				}
				rejoined = append(rejoined, pair{i, sub.Weights[k]})
			}
		}
		if len(rejoined) != len(idx) {
			t.Fatalf("%v: %d pairs in, %d out", strat, len(idx), len(rejoined))
		}
		// Per-shard relative order preserved ⇒ stable-partitioning the
		// original by shard reproduces the concatenation exactly.
		var want []pair
		for _, sub := range subs {
			for k := range idx {
				if m.Shard(idx[k]) == sub.Shard {
					want = append(want, pair{idx[k], weights[k]})
				}
			}
		}
		if !reflect.DeepEqual(rejoined, want) {
			t.Fatalf("%v: order not preserved", strat)
		}
	}
}

func TestSplitEmpty(t *testing.T) {
	m, _ := NewMap(8, 2, RangeSharding, 1)
	if subs := m.Split(nil, nil); subs != nil {
		t.Fatalf("empty split: %v", subs)
	}
}

func TestSplitBatchOrigins(t *testing.T) {
	m, _ := NewMap(16, 4, RangeSharding, 1)
	reqs := []struct {
		idx     []int
		weights []uint64
	}{
		{[]int{0, 1}, []uint64{1, 2}},    // shard 0 only
		{[]int{0, 15}, []uint64{3, 4}},   // shards 0 and 3
		{nil, nil},                       // no rows: appears nowhere
		{[]int{4, 5, 6}, []uint64{5, 6, 7}}, // shard 1 only
	}
	breqs := make([]core.BatchRequest, len(reqs))
	for i, r := range reqs {
		breqs[i] = core.BatchRequest{Idx: r.idx, Weights: r.weights}
	}
	subs := m.SplitBatch(breqs)
	got := map[int][]int{} // shard → origins
	for _, sub := range subs {
		if len(sub.Reqs) != len(sub.Origin) {
			t.Fatalf("shard %d: %d reqs, %d origins", sub.Shard, len(sub.Reqs), len(sub.Origin))
		}
		got[sub.Shard] = sub.Origin
	}
	want := map[int][]int{0: {0, 1}, 1: {3}, 3: {1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("origins: got %v, want %v", got, want)
	}
}

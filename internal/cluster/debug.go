package cluster

import (
	"time"

	"secndp/internal/remote"
)

// Live cluster inspection: DebugState snapshots the whole serving
// topology — epoch, per-shard replica health, transport fault counters,
// reshard progress — without taking any lock the query path contends
// on. Everything read here is an atomic the hot path already maintains;
// the snapshot is advisory and may straddle a concurrent epoch flip,
// in which case it simply describes whichever topology it loaded.
// The facade registers the result under /debug/cluster.

// ReplicaState is one replica's health as seen by its group's failover
// order at snapshot time.
type ReplicaState struct {
	// Healthy reports whether the replica is currently eligible: not
	// inside a failure cooldown window.
	Healthy bool `json:"healthy"`
	// Preferred marks the replica tried first by the next call.
	Preferred bool `json:"preferred"`
	// ConsecFails is the count of consecutive failed attempts; one
	// success resets it.
	ConsecFails uint32 `json:"consec_fails"`
	// CooldownRemaining is how long the replica stays out of the
	// healthy head of the failover order, in nanoseconds; 0 when not
	// cooling down.
	CooldownRemaining int64 `json:"cooldown_remaining_ns,omitempty"`
	// Transport carries the replica's wire fault counters and breaker
	// state when the replica is a remote.ReliableClient (or anything
	// exposing Stats); absent for in-process replicas.
	Transport *remote.TransportStats `json:"transport,omitempty"`
}

// ShardState is one shard's replica group at snapshot time.
type ShardState struct {
	Shard    int            `json:"shard"`
	Replicas []ReplicaState `json:"replicas"`
}

// ReshardState is the progress of the in-flight (or most recent)
// reshard's copy phase.
type ReshardState struct {
	// Active reports a reshard copy still streaming (done < total).
	Active bool `json:"active"`
	// TotalRows is the number of rows the reshard moves; RowsDone how
	// many have shipped. Both zero if no reshard ever ran.
	TotalRows int64 `json:"total_rows"`
	RowsDone  int64 `json:"rows_done"`
}

// State is the full cluster snapshot served at /debug/cluster.
type State struct {
	Epoch     uint64       `json:"epoch"`
	NumShards int          `json:"num_shards"`
	NumRows   int          `json:"num_rows"`
	Strategy  string       `json:"strategy"`
	Mirror    bool         `json:"tee_mirror"`
	Shards    []ShardState `json:"shards"`
	Reshard   ReshardState `json:"reshard"`
}

// statser is satisfied by remote.ReliableClient; in-process replicas
// (HonestNDP, test fakes) are not, and report no transport block.
type statser interface{ Stats() remote.TransportStats }

// DebugState snapshots the live topology for the inspection surface.
// Safe to call concurrently with queries and reshards.
func (n *NDP) DebugState() State {
	top := n.cur.Load()
	now := time.Now().UnixNano()
	st := State{
		Epoch:     top.smap.Epoch(),
		NumShards: top.smap.NumShards(),
		NumRows:   top.smap.NumRows(),
		Strategy:  top.smap.Strategy().String(),
		Mirror:    n.mirror != nil,
		Shards:    make([]ShardState, len(top.groups)),
	}
	total, done := n.reshardTotal.Load(), n.reshardDone.Load()
	st.Reshard = ReshardState{Active: total > 0 && done < total, TotalRows: total, RowsDone: done}
	for s, g := range top.groups {
		ss := ShardState{Shard: g.Shard(), Replicas: make([]ReplicaState, g.Size())}
		pref := g.Preferred()
		for r := 0; r < g.Size(); r++ {
			h := &g.health[r]
			until := h.downUntil.Load()
			rs := ReplicaState{
				Healthy:     until <= now,
				Preferred:   r == pref,
				ConsecFails: h.consecFails.Load(),
			}
			if until > now {
				rs.CooldownRemaining = until - now
			}
			if sc, ok := g.Replica(r).(statser); ok {
				stats := sc.Stats()
				rs.Transport = &stats
			}
			ss.Replicas[r] = rs
		}
		st.Shards[s] = ss
	}
	return st
}

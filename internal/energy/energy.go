// Package energy implements the memory-system energy model of paper §VII-C
// (Table V), the repository's substitute for DRAMPower + CACTI-IO. The
// paper reports closed-form pJ/bit coefficients for three components —
// DRAM access inside the DIMM, DIMM IO (the channel), and the SecNDP
// engine — scaled by the pooling factor PF; this package encodes those
// coefficients and also recomputes energy from simulated traffic so the
// two views can be cross-checked.
package energy

import "fmt"

// Coefficients are the Table V pJ-per-result-bit cost components. "×PF"
// terms scale with the pooling factor because producing one result bit
// requires reading PF data bits.
type Coefficients struct {
	// DIMMPerBit is the DRAM array+device access energy per bit read
	// (27.42 pJ/bit).
	DIMMPerBit float64
	// IOPerBit is the channel (DIMM IO) energy per bit transferred
	// (7.3 pJ/bit).
	IOPerBit float64
	// AESPerBit is the AES pad-generation energy per data bit (0.5 pJ/bit,
	// the non-NDP Enc row).
	AESPerBit float64
	// OTPPUPerBit is the OTP PU's multiply-accumulate energy per data bit
	// (0.4 pJ/bit: SecNDP Enc's 0.9 minus the AES 0.5).
	OTPPUPerBit float64
	// VerDIMMFactor inflates DIMM traffic for tag storage (30.85/27.42:
	// a 128-bit tag per 1024-bit row, plus alignment).
	VerDIMMFactor float64
	// VerIOBits is the extra IO energy for returning the result tag
	// (8.2 − 7.3 = 0.9 pJ/bit on the result path).
	VerIOPerBit float64
	// VerEnginePerBit is the verification engine's extra per-data-bit cost
	// (1.01 − 0.9 = 0.11 pJ/bit) and VerEngineFixed the per-result cost
	// (1.72 pJ/bit of result).
	VerEnginePerBit float64
	VerEngineFixed  float64
}

// TableV returns the paper's coefficients.
func TableV() Coefficients {
	return Coefficients{
		DIMMPerBit:      27.42,
		IOPerBit:        7.3,
		AESPerBit:       0.5,
		OTPPUPerBit:     0.4,
		VerDIMMFactor:   30.85 / 27.42,
		VerIOPerBit:     8.2 - 7.3,
		VerEnginePerBit: 1.01 - 0.9,
		VerEngineFixed:  1.72,
	}
}

// Mode enumerates the Table V rows.
type Mode int

const (
	// NonNDP: unprotected baseline — all PF rows cross the channel.
	NonNDP Mode = iota
	// NDP: unprotected NDP — only the result crosses the channel.
	NDP
	// NonNDPEnc: a TEE without NDP — baseline traffic plus AES decryption.
	NonNDPEnc
	// SecNDPEnc: SecNDP, encryption only.
	SecNDPEnc
	// SecNDPEncVer: SecNDP with verification tags.
	SecNDPEncVer
)

// String implements fmt.Stringer with the paper's row labels.
func (m Mode) String() string {
	switch m {
	case NonNDP:
		return "unprotected non-NDP"
	case NDP:
		return "unprotected NDP"
	case NonNDPEnc:
		return "non-NDP Enc"
	case SecNDPEnc:
		return "SecNDP Enc"
	case SecNDPEncVer:
		return "SecNDP Enc+ver"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Modes lists the Table V rows in order.
func Modes() []Mode { return []Mode{NonNDP, NDP, NonNDPEnc, SecNDPEnc, SecNDPEncVer} }

// Breakdown is the per-result-bit energy of one mode at one pooling factor.
type Breakdown struct {
	DIMM, IO, Engine float64 // pJ per result bit
}

// Total returns the summed pJ per result bit.
func (b Breakdown) Total() float64 { return b.DIMM + b.IO + b.Engine }

// PerBit evaluates the Table V model: energy per result bit for the mode
// at pooling factor pf.
func (c Coefficients) PerBit(m Mode, pf int) Breakdown {
	f := float64(pf)
	switch m {
	case NonNDP:
		return Breakdown{DIMM: c.DIMMPerBit * f, IO: c.IOPerBit * f}
	case NDP:
		return Breakdown{DIMM: c.DIMMPerBit * f, IO: c.IOPerBit}
	case NonNDPEnc:
		return Breakdown{DIMM: c.DIMMPerBit * f, IO: c.IOPerBit * f, Engine: c.AESPerBit * f}
	case SecNDPEnc:
		return Breakdown{
			DIMM:   c.DIMMPerBit * f,
			IO:     c.IOPerBit,
			Engine: (c.AESPerBit + c.OTPPUPerBit) * f,
		}
	case SecNDPEncVer:
		return Breakdown{
			DIMM:   c.DIMMPerBit * c.VerDIMMFactor * f,
			IO:     c.IOPerBit + c.VerIOPerBit,
			Engine: (c.AESPerBit+c.OTPPUPerBit+c.VerEnginePerBit)*f + c.VerEngineFixed,
		}
	}
	panic(fmt.Sprintf("energy: unknown mode %d", int(m)))
}

// Normalized returns the mode's total energy relative to the unprotected
// non-NDP baseline at the same PF — the right-hand column of Table V
// (79.2%, 101.5%, 81.83%, 92.09% at PF=80).
func (c Coefficients) Normalized(m Mode, pf int) float64 {
	return c.PerBit(m, pf).Total() / c.PerBit(NonNDP, pf).Total()
}

// Traffic converts simulated activity into energy, the cross-check path:
// bits through the DRAM arrays, bits over the channel, and AES blocks.
type Traffic struct {
	DIMMBits   uint64 // bits read/written inside DIMMs
	IOBits     uint64 // bits crossing the channel
	AESBlocks  uint64 // OTP blocks generated
	OTPPUBits  uint64 // bits processed by the OTP PU
	ResultBits uint64 // result bits verified
	Verified   bool
}

// FromTraffic returns total pJ for the observed traffic under the
// coefficient set.
func (c Coefficients) FromTraffic(t Traffic) float64 {
	e := float64(t.DIMMBits)*c.DIMMPerBit +
		float64(t.IOBits)*c.IOPerBit +
		float64(t.AESBlocks)*128*c.AESPerBit +
		float64(t.OTPPUBits)*c.OTPPUPerBit
	if t.Verified {
		e += float64(t.ResultBits) * c.VerEngineFixed
	}
	return e
}

// Area constants of §VII-C: the SecNDP engine (10 AES engines + OTP PU +
// verification engine) occupies ~1.625 mm² at 45 nm.
const (
	// EngineAreaMM2At45nm is the reported SecNDP engine area.
	EngineAreaMM2At45nm = 1.625
	// AESEnginesInAreaEstimate is the engine count behind that figure.
	AESEnginesInAreaEstimate = 10
)

package energy

import (
	"math"
	"testing"
)

// Table V's normalized column at PF=80 is the ground truth.
func TestNormalizedMatchesTableV(t *testing.T) {
	c := TableV()
	want := map[Mode]float64{
		NonNDP:       1.0,
		NDP:          0.792,
		NonNDPEnc:    1.015,
		SecNDPEnc:    0.8183,
		SecNDPEncVer: 0.9209,
	}
	for m, w := range want {
		got := c.Normalized(m, 80)
		if math.Abs(got-w) > 0.005 {
			t.Errorf("%v: normalized %.4f, want %.4f", m, got, w)
		}
	}
}

func TestPerBitComponents(t *testing.T) {
	c := TableV()
	b := c.PerBit(NonNDP, 80)
	if math.Abs(b.DIMM-27.42*80) > 1e-9 || math.Abs(b.IO-7.3*80) > 1e-9 || b.Engine != 0 {
		t.Errorf("non-NDP breakdown %+v", b)
	}
	n := c.PerBit(NDP, 80)
	if n.IO != 7.3 {
		t.Errorf("NDP IO should be PF-independent: %f", n.IO)
	}
	s := c.PerBit(SecNDPEnc, 80)
	if math.Abs(s.Engine-0.9*80) > 1e-9 {
		t.Errorf("SecNDP engine %.2f, want 72 (0.9×PF)", s.Engine)
	}
	v := c.PerBit(SecNDPEncVer, 80)
	if math.Abs(v.DIMM-30.85*80) > 0.01 {
		t.Errorf("Enc+ver DIMM %.2f, want 2468 (30.85×PF)", v.DIMM)
	}
	if math.Abs(v.Engine-(1.01*80+1.72)) > 0.01 {
		t.Errorf("Enc+ver engine %.2f, want 1.01×PF+1.72", v.Engine)
	}
}

func TestEnergySavingsGrowWithPF(t *testing.T) {
	// NDP's IO savings grow with PF: normalized energy decreases.
	c := TableV()
	prev := 2.0
	for _, pf := range []int{10, 40, 80, 160} {
		n := c.Normalized(SecNDPEnc, pf)
		if n >= prev {
			t.Errorf("PF=%d: normalized %f not decreasing", pf, n)
		}
		prev = n
	}
}

func TestSecNDPSavesVsNonNDPEnc(t *testing.T) {
	// The comparison that matters for a TEE user: SecNDP Enc vs non-NDP
	// Enc (both protected).
	c := TableV()
	for _, pf := range []int{20, 80, 200} {
		if c.Normalized(SecNDPEnc, pf) >= c.Normalized(NonNDPEnc, pf) {
			t.Errorf("PF=%d: SecNDP does not save energy over encrypted non-NDP", pf)
		}
	}
}

func TestVerificationCostsEnergy(t *testing.T) {
	c := TableV()
	if c.Normalized(SecNDPEncVer, 80) <= c.Normalized(SecNDPEnc, 80) {
		t.Error("verification should cost extra energy")
	}
	// But still below the unprotected baseline at PF=80 (the paper's 8%
	// saving claim).
	if c.Normalized(SecNDPEncVer, 80) >= 1 {
		t.Error("SecNDP Enc+ver should still beat non-NDP at PF=80")
	}
}

func TestPaperHeadlineSavings(t *testing.T) {
	// §VII-C: "SecNDP saves memory system energy by 18% with encryption
	// only and by 8% with verification" at PF=80.
	c := TableV()
	encSaving := 1 - c.Normalized(SecNDPEnc, 80)
	verSaving := 1 - c.Normalized(SecNDPEncVer, 80)
	if encSaving < 0.17 || encSaving > 0.19 {
		t.Errorf("encryption-only saving %.3f, want ~0.18", encSaving)
	}
	if verSaving < 0.07 || verSaving > 0.09 {
		t.Errorf("verification saving %.3f, want ~0.08", verSaving)
	}
}

func TestFromTraffic(t *testing.T) {
	c := TableV()
	tr := Traffic{
		DIMMBits:  1000,
		IOBits:    100,
		AESBlocks: 2,
		OTPPUBits: 256,
	}
	want := 1000*27.42 + 100*7.3 + 2*128*0.5 + 256*0.4
	if got := c.FromTraffic(tr); math.Abs(got-want) > 1e-9 {
		t.Errorf("FromTraffic = %f, want %f", got, want)
	}
	tr.Verified = true
	tr.ResultBits = 128
	if got := c.FromTraffic(tr); math.Abs(got-(want+128*1.72)) > 1e-9 {
		t.Errorf("verified FromTraffic = %f", got)
	}
}

// The closed-form Table V row and the traffic-based computation must agree
// for the canonical SLS shape: PF rows of data in, one result out.
func TestClosedFormMatchesTrafficModel(t *testing.T) {
	c := TableV()
	const pf = 80
	const resultBits = 1024 // one 32×32-bit embedding row
	dataBits := uint64(pf * resultBits)

	closed := c.PerBit(SecNDPEnc, pf).Total() * resultBits
	traffic := c.FromTraffic(Traffic{
		DIMMBits:  dataBits,
		IOBits:    resultBits,
		AESBlocks: dataBits / 128,
		OTPPUBits: dataBits,
	})
	if math.Abs(closed-traffic)/closed > 1e-9 {
		t.Errorf("closed form %f vs traffic %f", closed, traffic)
	}
}

func TestModeStrings(t *testing.T) {
	if len(Modes()) != 5 {
		t.Fatal("Modes() should list the 5 Table V rows")
	}
	for _, m := range Modes() {
		if m.String() == "" || m.String()[0] == 'M' {
			t.Errorf("missing label for mode %d", int(m))
		}
	}
	if Mode(99).String() != "Mode(99)" {
		t.Error("unknown mode label")
	}
}

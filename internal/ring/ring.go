// Package ring implements modular arithmetic in the integer ring Z(2^we),
// the algebraic structure underlying SecNDP's arithmetic secret sharing
// (paper §III-C, §IV-A). Elements are stored in uint64 regardless of the
// ring width; all operations reduce modulo 2^we.
//
// The ring width we is the bit width of one data element (8 for quantized
// embeddings, 32 for full-precision fixed point). A 128-bit cipher block
// covers l = wc/we consecutive elements.
package ring

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Ring is the integer ring Z(2^we) for a fixed element width we in bits.
// The zero value is not valid; use New.
type Ring struct {
	we   uint
	mask uint64
}

// New returns the ring Z(2^we). The width must be in [1, 64].
func New(we uint) (Ring, error) {
	if we == 0 || we > 64 {
		return Ring{}, fmt.Errorf("ring: element width %d out of range [1,64]", we)
	}
	return Ring{we: we, mask: maskFor(we)}, nil
}

// MustNew is New but panics on an invalid width. Intended for package-level
// constants and tests where the width is a literal.
func MustNew(we uint) Ring {
	r, err := New(we)
	if err != nil {
		panic(err)
	}
	return r
}

func maskFor(we uint) uint64 {
	if we == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << we) - 1
}

// Width returns the element width we in bits.
func (r Ring) Width() uint { return r.we }

// Bytes returns the element width in bytes. Widths that are not a multiple
// of 8 round up.
func (r Ring) Bytes() int { return int(r.we+7) / 8 }

// Mask returns the bit mask 2^we - 1.
func (r Ring) Mask() uint64 { return r.mask }

// Order returns the number of elements in the ring as a float64 (2^we).
// Exact for we < 53; used only for statistics and reporting.
func (r Ring) Order() float64 {
	return float64(1) * pow2(r.we)
}

func pow2(n uint) float64 {
	v := 1.0
	for i := uint(0); i < n; i++ {
		v *= 2
	}
	return v
}

// Reduce maps an arbitrary uint64 into the canonical representative in
// [0, 2^we).
func (r Ring) Reduce(a uint64) uint64 { return a & r.mask }

// Add returns a + b mod 2^we.
func (r Ring) Add(a, b uint64) uint64 { return (a + b) & r.mask }

// Sub returns a - b mod 2^we. This is the ⊖ operator of Algorithm 1.
func (r Ring) Sub(a, b uint64) uint64 { return (a - b) & r.mask }

// Neg returns -a mod 2^we.
func (r Ring) Neg(a uint64) uint64 { return (-a) & r.mask }

// Mul returns a * b mod 2^we.
func (r Ring) Mul(a, b uint64) uint64 { return (a * b) & r.mask }

// ToSigned interprets a canonical ring element as a two's-complement signed
// integer of width we.
func (r Ring) ToSigned(a uint64) int64 {
	a &= r.mask
	sign := uint64(1) << (r.we - 1)
	if a&sign != 0 {
		return int64(a | ^r.mask) // sign-extend
	}
	return int64(a)
}

// FromSigned maps a signed integer into the ring (two's complement,
// truncated to we bits).
func (r Ring) FromSigned(v int64) uint64 { return uint64(v) & r.mask }

// AddVec stores a[i] + b[i] mod 2^we into dst. The three slices must have
// equal length; dst may alias a or b.
func (r Ring) AddVec(dst, a, b []uint64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("ring: AddVec length mismatch")
	}
	for i := range a {
		dst[i] = (a[i] + b[i]) & r.mask
	}
}

// SubVec stores a[i] - b[i] mod 2^we into dst.
func (r Ring) SubVec(dst, a, b []uint64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("ring: SubVec length mismatch")
	}
	for i := range a {
		dst[i] = (a[i] - b[i]) & r.mask
	}
}

// ScaleAccum computes dst[i] += w * v[i] mod 2^we. This is the per-row step
// of the weighted summation (NDPInst with a multiply-accumulate).
func (r Ring) ScaleAccum(dst []uint64, w uint64, v []uint64) {
	if len(dst) != len(v) {
		panic("ring: ScaleAccum length mismatch")
	}
	// Unrolled 4-wide with explicit capacity slicing: this loop is the
	// scatter kernel of the batched pipeline (one visit per (row, user)
	// pair) as well as the NDP summation step, so shaving the per-element
	// bounds checks is measurable at batch scale.
	mask := r.mask
	i := 0
	for ; i+4 <= len(v); i += 4 {
		d := dst[i : i+4 : i+4]
		s := v[i : i+4 : i+4]
		d[0] = (d[0] + w*s[0]) & mask
		d[1] = (d[1] + w*s[1]) & mask
		d[2] = (d[2] + w*s[2]) & mask
		d[3] = (d[3] + w*s[3]) & mask
	}
	for ; i < len(v); i++ {
		dst[i] = (dst[i] + w*v[i]) & mask
	}
}

// ScaleAccumBytes computes dst[j] += w * lane_j(data) mod 2^we straight
// from packed ciphertext bytes — ScaleAccum fused with UnpackElemsInto, so
// the NDP's row loop needs neither an unpacked scratch vector nor a second
// pass over the row. len(data) must equal len(dst) × element bytes, and
// the width must be byte-aligned (the packed widths core.Params admits).
func (r Ring) ScaleAccumBytes(dst []uint64, w uint64, data []byte) {
	eb := r.Bytes()
	if uint(eb)*8 != r.we {
		panic("ring: ScaleAccumBytes requires byte-aligned width")
	}
	if len(data) != len(dst)*eb {
		panic("ring: ScaleAccumBytes size mismatch")
	}
	mask := r.mask
	switch eb {
	case 1:
		for j := range dst {
			dst[j] = (dst[j] + w*uint64(data[j])) & mask
		}
	case 2:
		for j := range dst {
			dst[j] = (dst[j] + w*uint64(binary.LittleEndian.Uint16(data[j*2:]))) & mask
		}
	case 4:
		// One 64-bit load feeds two lanes.
		j := 0
		for ; j+1 < len(dst); j += 2 {
			e := binary.LittleEndian.Uint64(data[j*4:])
			dst[j] = (dst[j] + w*(e&0xFFFFFFFF)) & mask
			dst[j+1] = (dst[j+1] + w*(e>>32)) & mask
		}
		for ; j < len(dst); j++ {
			dst[j] = (dst[j] + w*uint64(binary.LittleEndian.Uint32(data[j*4:]))) & mask
		}
	case 8:
		for j := range dst {
			dst[j] = (dst[j] + w*binary.LittleEndian.Uint64(data[j*8:])) & mask
		}
	}
}

// Dot returns the inner product of a and b mod 2^we.
func (r Ring) Dot(a, b []uint64) uint64 {
	if len(a) != len(b) {
		panic("ring: Dot length mismatch")
	}
	var acc uint64
	for i := range a {
		acc += a[i] * b[i]
	}
	return acc & r.mask
}

// WeightedSum computes res_j = Σ_k weights[k] * rows[k][j] mod 2^we, the
// core SLS/pooling operation of Algorithm 4. All rows must share one length.
func (r Ring) WeightedSum(weights []uint64, rows [][]uint64) []uint64 {
	if len(weights) != len(rows) {
		panic("ring: WeightedSum length mismatch")
	}
	if len(rows) == 0 {
		return nil
	}
	res := make([]uint64, len(rows[0]))
	for k, row := range rows {
		r.ScaleAccum(res, weights[k], row)
	}
	return res
}

// WeightedSumExact computes the weighted sum over the full integers
// (128-bit accumulation) alongside the ring result and reports, per column,
// whether the exact unsigned sum exceeded the ring order — i.e. whether the
// ring computation overflowed. SecNDP's verification scheme detects exactly
// these overflows (paper footnote 1, Theorem A.2).
func (r Ring) WeightedSumExact(weights []uint64, rows [][]uint64) (res []uint64, overflow []bool) {
	if len(weights) != len(rows) {
		panic("ring: WeightedSumExact length mismatch")
	}
	if len(rows) == 0 {
		return nil, nil
	}
	m := len(rows[0])
	hi := make([]uint64, m)
	lo := make([]uint64, m)
	for k, row := range rows {
		if len(row) != m {
			panic("ring: WeightedSumExact ragged rows")
		}
		w := weights[k]
		for j, x := range row {
			ph, pl := bits.Mul64(w, x)
			var c uint64
			lo[j], c = bits.Add64(lo[j], pl, 0)
			hi[j], _ = bits.Add64(hi[j], ph, c)
		}
	}
	res = make([]uint64, m)
	overflow = make([]bool, m)
	for j := 0; j < m; j++ {
		res[j] = lo[j] & r.mask
		overflow[j] = hi[j] != 0 || lo[j] > r.mask
	}
	return res, overflow
}

// PackElems serializes canonical ring elements into bytes, little-endian
// within each element, matching the byte layout Algorithm 1 assumes when it
// slices a plaintext block into we-bit strings. Only widths that are
// multiples of 8 can be packed.
func (r Ring) PackElems(elems []uint64) []byte {
	eb := r.Bytes()
	if uint(eb)*8 != r.we {
		panic("ring: PackElems requires byte-aligned width")
	}
	out := make([]byte, len(elems)*eb)
	for i, e := range elems {
		e &= r.mask
		for b := 0; b < eb; b++ {
			out[i*eb+b] = byte(e >> (8 * b))
		}
	}
	return out
}

// UnpackElemsInto decodes packed elements into dst without allocating —
// the hot-path form used by the parallel OTP engine, where each worker
// reuses one scratch vector across rows. len(data) must equal
// len(dst) × element bytes.
func (r Ring) UnpackElemsInto(dst []uint64, data []byte) {
	eb := r.Bytes()
	if uint(eb)*8 != r.we {
		panic("ring: UnpackElemsInto requires byte-aligned width")
	}
	if len(data) != len(dst)*eb {
		panic("ring: UnpackElemsInto size mismatch")
	}
	// Whole-word loads per element width: this is the hottest decode loop
	// in the system (every row read on both the OTP and NDP sides passes
	// through it), and the generic byte-assembly form costs eb shifts and
	// bounds checks per element.
	switch eb {
	case 1:
		for i := range dst {
			dst[i] = uint64(data[i])
		}
	case 2:
		for i := range dst {
			dst[i] = uint64(binary.LittleEndian.Uint16(data[i*2:]))
		}
	case 4:
		for i := range dst {
			dst[i] = uint64(binary.LittleEndian.Uint32(data[i*4:]))
		}
	case 8:
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint64(data[i*8:])
		}
	default:
		for i := range dst {
			var e uint64
			for b := 0; b < eb; b++ {
				e |= uint64(data[i*eb+b]) << (8 * b)
			}
			dst[i] = e
		}
	}
}

// UnpackElems is the inverse of PackElems. len(data) must be a multiple of
// the element byte width.
func (r Ring) UnpackElems(data []byte) []uint64 {
	eb := r.Bytes()
	if uint(eb)*8 != r.we {
		panic("ring: UnpackElems requires byte-aligned width")
	}
	if len(data)%eb != 0 {
		panic("ring: UnpackElems data not a multiple of element size")
	}
	out := make([]uint64, len(data)/eb)
	r.UnpackElemsInto(out, data)
	return out
}

// ElemsPerBlock returns l = wc/we, the number of ring elements covered by
// one cipher block of wc bits (Algorithm 1).
func (r Ring) ElemsPerBlock(wc uint) int {
	if wc%r.we != 0 {
		panic("ring: cipher block width not a multiple of element width")
	}
	return int(wc / r.we)
}

// String implements fmt.Stringer.
func (r Ring) String() string { return fmt.Sprintf("Z(2^%d)", r.we) }

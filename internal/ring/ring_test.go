package ring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidWidths(t *testing.T) {
	for _, we := range []uint{1, 7, 8, 16, 32, 63, 64} {
		r, err := New(we)
		if err != nil {
			t.Fatalf("New(%d): %v", we, err)
		}
		if r.Width() != we {
			t.Errorf("Width() = %d, want %d", r.Width(), we)
		}
	}
}

func TestNewInvalidWidths(t *testing.T) {
	for _, we := range []uint{0, 65, 128} {
		if _, err := New(we); err == nil {
			t.Errorf("New(%d): expected error", we)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestMask(t *testing.T) {
	cases := map[uint]uint64{
		8:  0xFF,
		16: 0xFFFF,
		32: 0xFFFFFFFF,
		64: ^uint64(0),
	}
	for we, want := range cases {
		if got := MustNew(we).Mask(); got != want {
			t.Errorf("Mask(%d) = %#x, want %#x", we, got, want)
		}
	}
}

func TestBytes(t *testing.T) {
	if got := MustNew(8).Bytes(); got != 1 {
		t.Errorf("Bytes(8) = %d, want 1", got)
	}
	if got := MustNew(32).Bytes(); got != 4 {
		t.Errorf("Bytes(32) = %d, want 4", got)
	}
	if got := MustNew(12).Bytes(); got != 2 {
		t.Errorf("Bytes(12) = %d, want 2 (round up)", got)
	}
}

func TestAddSubIdentity(t *testing.T) {
	r := MustNew(8)
	if got := r.Add(200, 100); got != 44 {
		t.Errorf("Add(200,100) mod 256 = %d, want 44", got)
	}
	if got := r.Sub(10, 20); got != 246 {
		t.Errorf("Sub(10,20) mod 256 = %d, want 246", got)
	}
	if got := r.Mul(16, 16); got != 0 {
		t.Errorf("Mul(16,16) mod 256 = %d, want 0", got)
	}
}

// Property: Sub is the inverse of Add — (a+b)-b == a in the ring.
func TestAddSubInverseProperty(t *testing.T) {
	for _, we := range []uint{8, 16, 32, 64} {
		r := MustNew(we)
		f := func(a, b uint64) bool {
			a = r.Reduce(a)
			return r.Sub(r.Add(a, b), b) == a
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("we=%d: %v", we, err)
		}
	}
}

// Property: the secret-sharing identity of Algorithm 1 — for any plaintext p
// and pad e, c := p ⊖ e satisfies c ⊕ e = p.
func TestShareReconstructionProperty(t *testing.T) {
	r := MustNew(32)
	f := func(p, e uint64) bool {
		c := r.Sub(p, e)
		return r.Add(c, e) == r.Reduce(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: multiplication distributes over addition.
func TestDistributivityProperty(t *testing.T) {
	r := MustNew(16)
	f := func(a, x, y uint64) bool {
		return r.Mul(a, r.Add(x, y)) == r.Add(r.Mul(a, x), r.Mul(a, y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Neg(a) + a == 0.
func TestNegProperty(t *testing.T) {
	r := MustNew(8)
	f := func(a uint64) bool { return r.Add(r.Neg(a), a) == 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignedRoundTrip(t *testing.T) {
	r := MustNew(8)
	for v := int64(-128); v <= 127; v++ {
		if got := r.ToSigned(r.FromSigned(v)); got != v {
			t.Fatalf("signed round trip %d -> %d", v, got)
		}
	}
}

func TestToSignedBoundary(t *testing.T) {
	r := MustNew(8)
	if got := r.ToSigned(0x80); got != -128 {
		t.Errorf("ToSigned(0x80) = %d, want -128", got)
	}
	if got := r.ToSigned(0x7F); got != 127 {
		t.Errorf("ToSigned(0x7F) = %d, want 127", got)
	}
	r64 := MustNew(64)
	if got := r64.ToSigned(^uint64(0)); got != -1 {
		t.Errorf("64-bit ToSigned(all ones) = %d, want -1", got)
	}
}

func TestVecOps(t *testing.T) {
	r := MustNew(8)
	a := []uint64{1, 2, 250}
	b := []uint64{10, 20, 10}
	dst := make([]uint64, 3)
	r.AddVec(dst, a, b)
	want := []uint64{11, 22, 4}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("AddVec[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
	r.SubVec(dst, dst, b)
	for i := range a {
		if dst[i] != a[i] {
			t.Errorf("SubVec[%d] = %d, want %d", i, dst[i], a[i])
		}
	}
}

func TestVecOpsPanicOnMismatch(t *testing.T) {
	r := MustNew(8)
	defer func() {
		if recover() == nil {
			t.Fatal("AddVec with mismatched lengths did not panic")
		}
	}()
	r.AddVec(make([]uint64, 2), make([]uint64, 3), make([]uint64, 3))
}

func TestScaleAccum(t *testing.T) {
	r := MustNew(16)
	dst := []uint64{1, 1}
	r.ScaleAccum(dst, 3, []uint64{10, 100})
	if dst[0] != 31 || dst[1] != 301 {
		t.Errorf("ScaleAccum = %v, want [31 301]", dst)
	}
}

func TestDot(t *testing.T) {
	r := MustNew(32)
	got := r.Dot([]uint64{1, 2, 3}, []uint64{4, 5, 6})
	if got != 32 {
		t.Errorf("Dot = %d, want 32", got)
	}
}

func TestWeightedSum(t *testing.T) {
	r := MustNew(32)
	rows := [][]uint64{{1, 2}, {3, 4}}
	res := r.WeightedSum([]uint64{2, 10}, rows)
	if res[0] != 32 || res[1] != 44 {
		t.Errorf("WeightedSum = %v, want [32 44]", res)
	}
}

func TestWeightedSumEmpty(t *testing.T) {
	r := MustNew(32)
	if res := r.WeightedSum(nil, nil); res != nil {
		t.Errorf("WeightedSum(nil) = %v, want nil", res)
	}
}

// Property: the linearity that SecNDP exploits — a weighted sum of shares
// equals the share of the weighted sum, column-wise.
func TestWeightedSumLinearityProperty(t *testing.T) {
	r := MustNew(32)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n, m := 1+rng.Intn(8), 1+rng.Intn(8)
		p := make([][]uint64, n) // plaintext rows
		e := make([][]uint64, n) // pad rows
		c := make([][]uint64, n) // ciphertext rows
		w := make([]uint64, n)
		for i := 0; i < n; i++ {
			w[i] = uint64(rng.Intn(1000))
			p[i] = make([]uint64, m)
			e[i] = make([]uint64, m)
			c[i] = make([]uint64, m)
			for j := 0; j < m; j++ {
				p[i][j] = r.Reduce(rng.Uint64())
				e[i][j] = r.Reduce(rng.Uint64())
				c[i][j] = r.Sub(p[i][j], e[i][j])
			}
		}
		cres := r.WeightedSum(w, c)
		eres := r.WeightedSum(w, e)
		pres := r.WeightedSum(w, p)
		for j := 0; j < m; j++ {
			if r.Add(cres[j], eres[j]) != pres[j] {
				t.Fatalf("trial %d col %d: share sum %d != plaintext sum %d",
					trial, j, r.Add(cres[j], eres[j]), pres[j])
			}
		}
	}
}

func TestWeightedSumExactNoOverflow(t *testing.T) {
	r := MustNew(8)
	res, ovf := r.WeightedSumExact([]uint64{1, 1}, [][]uint64{{100}, {100}})
	if res[0] != 200 || ovf[0] {
		t.Errorf("got res=%d ovf=%v, want 200 false", res[0], ovf[0])
	}
}

func TestWeightedSumExactOverflow(t *testing.T) {
	r := MustNew(8)
	res, ovf := r.WeightedSumExact([]uint64{1, 1}, [][]uint64{{200}, {100}})
	if res[0] != 44 || !ovf[0] {
		t.Errorf("got res=%d ovf=%v, want 44 true", res[0], ovf[0])
	}
}

func TestWeightedSumExactLargeWeights(t *testing.T) {
	r := MustNew(64)
	// 2^63 * 2 overflows 64 bits exactly once.
	res, ovf := r.WeightedSumExact([]uint64{2}, [][]uint64{{1 << 63}})
	if res[0] != 0 || !ovf[0] {
		t.Errorf("got res=%d ovf=%v, want 0 true", res[0], ovf[0])
	}
}

// Property: WeightedSumExact's ring result always matches WeightedSum.
func TestWeightedSumExactMatchesRingProperty(t *testing.T) {
	r := MustNew(16)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(16)
		rows := make([][]uint64, n)
		w := make([]uint64, n)
		for i := range rows {
			rows[i] = []uint64{rng.Uint64(), rng.Uint64()}
			for j := range rows[i] {
				rows[i][j] = r.Reduce(rows[i][j])
			}
			w[i] = r.Reduce(rng.Uint64())
		}
		want := r.WeightedSum(w, rows)
		got, _ := r.WeightedSumExact(w, rows)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("trial %d: exact ring result %v != %v", trial, got, want)
			}
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	for _, we := range []uint{8, 16, 32, 64} {
		r := MustNew(we)
		elems := []uint64{0, 1, r.Mask(), r.Mask() / 3}
		got := r.UnpackElems(r.PackElems(elems))
		for i := range elems {
			if got[i] != elems[i] {
				t.Errorf("we=%d elem %d: %d != %d", we, i, got[i], elems[i])
			}
		}
	}
}

func TestPackLittleEndian(t *testing.T) {
	r := MustNew(32)
	b := r.PackElems([]uint64{0x04030201})
	want := []byte{1, 2, 3, 4}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("PackElems byte %d = %#x, want %#x", i, b[i], want[i])
		}
	}
}

func TestPackPanicsOnUnalignedWidth(t *testing.T) {
	r := MustNew(12)
	defer func() {
		if recover() == nil {
			t.Fatal("PackElems on 12-bit ring did not panic")
		}
	}()
	r.PackElems([]uint64{1})
}

func TestElemsPerBlock(t *testing.T) {
	if got := MustNew(8).ElemsPerBlock(128); got != 16 {
		t.Errorf("l for we=8: %d, want 16", got)
	}
	if got := MustNew(32).ElemsPerBlock(128); got != 4 {
		t.Errorf("l for we=32: %d, want 4", got)
	}
}

func TestString(t *testing.T) {
	if got := MustNew(32).String(); got != "Z(2^32)" {
		t.Errorf("String() = %q", got)
	}
}

func TestFixedRoundTripSmallValues(t *testing.T) {
	f := NewFixed(MustNew(32), 16)
	for _, x := range []float64{0, 1, -1, 0.5, -0.25, 123.456, -987.125} {
		got := f.Decode(f.Encode(x))
		if math.Abs(got-x) > f.MaxAbsError() {
			t.Errorf("fixed round trip %g -> %g (err > %g)", x, got, f.MaxAbsError())
		}
	}
}

func TestFixedSaturation(t *testing.T) {
	f := NewFixed(MustNew(8), 2) // range [-32, 31.75]
	if got := f.Decode(f.Encode(1000)); got != 31.75 {
		t.Errorf("positive saturation: %g, want 31.75", got)
	}
	if got := f.Decode(f.Encode(-1000)); got != -32 {
		t.Errorf("negative saturation: %g, want -32", got)
	}
}

func TestFixedVecRoundTrip(t *testing.T) {
	f := NewFixed(MustNew(32), 20)
	xs := []float64{0.001, -0.002, 3.14159, -2.71828}
	ys := f.DecodeVec(f.EncodeVec(xs))
	for i := range xs {
		if math.Abs(ys[i]-xs[i]) > f.MaxAbsError() {
			t.Errorf("vec round trip %g -> %g", xs[i], ys[i])
		}
	}
}

func TestFixedPanicsOnBadFrac(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFixed(frac >= width) did not panic")
		}
	}()
	NewFixed(MustNew(8), 8)
}

// Property: fixed-point addition in the ring matches float addition within
// quantization error, when no saturation occurs.
func TestFixedAdditionHomomorphismProperty(t *testing.T) {
	f := NewFixed(MustNew(32), 16)
	r := f.R
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		x := rng.Float64()*200 - 100
		y := rng.Float64()*200 - 100
		got := f.Decode(r.Add(f.Encode(x), f.Encode(y)))
		if math.Abs(got-(x+y)) > 2*f.MaxAbsError()+1e-9 {
			t.Fatalf("fixed add: %g + %g = %g (ring %g)", x, y, x+y, got)
		}
	}
}

func TestScaleAccumBytesMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, we := range []uint{8, 16, 32, 64} {
		r := MustNew(we)
		for _, m := range []int{1, 2, 3, 7, 64} {
			data := make([]byte, m*r.Bytes())
			rng.Read(data)
			w := rng.Uint64()
			got := make([]uint64, m)
			want := make([]uint64, m)
			for j := range got {
				v := rng.Uint64() & r.Mask()
				got[j], want[j] = v, v
			}
			r.ScaleAccumBytes(got, w, data)
			row := make([]uint64, m)
			r.UnpackElemsInto(row, data)
			r.ScaleAccum(want, w, row)
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("we=%d m=%d: ScaleAccumBytes[%d] = %#x, two-pass %#x", we, m, j, got[j], want[j])
				}
			}
		}
	}
}

func TestScaleAccumBytesRejectsUnalignedWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ScaleAccumBytes with non-byte-aligned width did not panic")
		}
	}()
	MustNew(12).ScaleAccumBytes(make([]uint64, 2), 1, make([]byte, 4))
}

package ring

import "math"

// Fixed describes a signed fixed-point representation inside a ring: values
// are stored as two's-complement we-bit integers with Frac fractional bits.
// SecNDP operates over integers/fixed point because arithmetic sharing works
// in Z(2^we) (paper §III-C); this type performs the quantization at the
// boundary.
type Fixed struct {
	R    Ring
	Frac uint // number of fractional bits
}

// NewFixed returns a fixed-point codec with the given ring and fractional
// bits. Frac must be < the ring width so at least one integer bit (the sign)
// remains.
func NewFixed(r Ring, frac uint) Fixed {
	if frac >= r.Width() {
		panic("ring: fractional bits must be smaller than the ring width")
	}
	return Fixed{R: r, Frac: frac}
}

// Scale returns 2^Frac as a float64.
func (f Fixed) Scale() float64 { return math.Ldexp(1, int(f.Frac)) }

// Encode quantizes a float64 to the nearest representable fixed-point value,
// saturating at the representable range.
func (f Fixed) Encode(x float64) uint64 {
	s := math.Round(x * f.Scale())
	max := math.Ldexp(1, int(f.R.Width()-1)) - 1
	min := -math.Ldexp(1, int(f.R.Width()-1))
	if s > max {
		s = max
	}
	if s < min {
		s = min
	}
	return f.R.FromSigned(int64(s))
}

// Decode maps a ring element back to a float64.
func (f Fixed) Decode(e uint64) float64 {
	return float64(f.R.ToSigned(e)) / f.Scale()
}

// EncodeVec quantizes a float64 slice.
func (f Fixed) EncodeVec(xs []float64) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = f.Encode(x)
	}
	return out
}

// DecodeVec dequantizes a ring-element slice.
func (f Fixed) DecodeVec(es []uint64) []float64 {
	out := make([]float64, len(es))
	for i, e := range es {
		out[i] = f.Decode(e)
	}
	return out
}

// MaxAbsError returns the worst-case absolute quantization error, half an
// ULP of the fixed-point grid.
func (f Fixed) MaxAbsError() float64 { return 0.5 / f.Scale() }

package addrmap

import (
	"testing"
)

func TestTranslateStableWithinPage(t *testing.T) {
	m := NewMapper(1<<30, 1)
	p1, err := m.Translate(0x1234)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := m.Translate(0x1235)
	if p2 != p1+1 {
		t.Errorf("offsets within a page not preserved: %#x vs %#x", p1, p2)
	}
	p3, _ := m.Translate(0x1234)
	if p3 != p1 {
		t.Error("translation not stable")
	}
}

func TestTranslatePreservesPageOffset(t *testing.T) {
	m := NewMapper(1<<30, 2)
	p, _ := m.Translate(0x7FFF)
	if p&(PageSize-1) != 0xFFF {
		t.Errorf("page offset not preserved: %#x", p)
	}
}

func TestTranslateDistinctPagesDistinctFrames(t *testing.T) {
	m := NewMapper(1<<30, 3)
	seen := make(map[uint64]bool)
	for v := uint64(0); v < 1000; v++ {
		p, err := m.Translate(v << PageBits)
		if err != nil {
			t.Fatal(err)
		}
		frame := p >> PageBits
		if seen[frame] {
			t.Fatalf("physical frame %d assigned twice", frame)
		}
		seen[frame] = true
	}
}

func TestTranslateDeterministicUnderSeed(t *testing.T) {
	a := NewMapper(1<<30, 42)
	b := NewMapper(1<<30, 42)
	for v := uint64(0); v < 100; v++ {
		pa, _ := a.Translate(v << PageBits)
		pb, _ := b.Translate(v << PageBits)
		if pa != pb {
			t.Fatalf("same seed diverged at page %d", v)
		}
	}
	c := NewMapper(1<<30, 43)
	diff := 0
	for v := uint64(0); v < 100; v++ {
		pa, _ := a.Translate(v << PageBits)
		pc, _ := c.Translate(v << PageBits)
		if pa != pc {
			diff++
		}
	}
	if diff < 90 {
		t.Errorf("different seeds produced %d/100 different mappings", diff)
	}
}

func TestExhaustion(t *testing.T) {
	m := NewMapper(4*PageSize, 4)
	for v := uint64(0); v < 4; v++ {
		if _, err := m.Translate(v << PageBits); err != nil {
			t.Fatalf("page %d: %v", v, err)
		}
	}
	if _, err := m.Translate(5 << PageBits); err == nil {
		t.Error("exhaustion not reported")
	}
}

func TestAllFramesReachableExactlyOnce(t *testing.T) {
	const n = 64
	m := NewMapper(n*PageSize, 5)
	seen := make(map[uint64]bool)
	for v := uint64(0); v < n; v++ {
		p, err := m.Translate(v << PageBits)
		if err != nil {
			t.Fatal(err)
		}
		seen[p>>PageBits] = true
	}
	if len(seen) != n {
		t.Errorf("only %d distinct frames of %d", len(seen), n)
	}
	for f := uint64(0); f < n; f++ {
		if !seen[f] {
			t.Errorf("frame %d never issued", f)
		}
	}
}

func TestRandomnessSpread(t *testing.T) {
	// Consecutive virtual pages should not map to consecutive physical
	// frames (that is the whole point of the random mapping).
	m := NewMapper(1<<30, 6)
	sequential := 0
	var prev uint64
	for v := uint64(0); v < 500; v++ {
		p, _ := m.Translate(v << PageBits)
		if v > 0 && p>>PageBits == prev+1 {
			sequential++
		}
		prev = p >> PageBits
	}
	if sequential > 25 {
		t.Errorf("%d/500 sequential frame pairs — mapping not random", sequential)
	}
}

func TestTranslateRange(t *testing.T) {
	m := NewMapper(1<<30, 7)
	frags, err := m.TranslateRange(PageSize-100, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 2 {
		t.Fatalf("expected 2 fragments, got %d", len(frags))
	}
	if frags[0].Len != 100 || frags[1].Len != 200 {
		t.Errorf("fragment lengths %d,%d want 100,200", frags[0].Len, frags[1].Len)
	}
	total := 0
	for _, f := range frags {
		total += f.Len
	}
	if total != 300 {
		t.Errorf("fragments cover %d bytes, want 300", total)
	}
}

func TestTranslateRangeWithinPage(t *testing.T) {
	m := NewMapper(1<<30, 8)
	frags, err := m.TranslateRange(128, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || frags[0].Len != 128 {
		t.Errorf("fragments = %+v", frags)
	}
}

func TestMappedCount(t *testing.T) {
	m := NewMapper(1<<30, 9)
	m.Translate(0)
	m.Translate(100) // same page
	m.Translate(PageSize)
	if got := m.Mapped(); got != 2 {
		t.Errorf("Mapped() = %d, want 2", got)
	}
}

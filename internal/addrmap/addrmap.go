// Package addrmap models the OS virtual-to-physical page mapping step of
// the paper's simulation flow (§VI-B): "we apply a standard page mapping
// method to generate the physical addresses from a trace of embedding
// lookups by assuming that the OS randomly selects free physical pages for
// each logical page frame". The resulting physical address trace is what
// feeds the DRAM simulator, and its randomness is what spreads embedding
// rows across ranks and banks.
package addrmap

import (
	"fmt"
	"math/rand"
)

// PageBits is the standard 4 KiB page size.
const PageBits = 12

// PageSize is 1 << PageBits.
const PageSize = 1 << PageBits

// Mapper lazily assigns random free physical pages to virtual pages,
// deterministic under its seed. It hands out pages from a fixed physical
// capacity without reuse.
type Mapper struct {
	rng      *rand.Rand
	capacity uint64 // number of physical pages
	pages    map[uint64]uint64
	// freeSwap implements an O(1) random draw without materializing the
	// full free list: a virtual Fisher-Yates over [0, capacity).
	swapped map[uint64]uint64
	used    uint64
}

// NewMapper creates a mapper over a physical memory of totalBytes
// (rounded down to whole pages), seeded deterministically.
func NewMapper(totalBytes uint64, seed int64) *Mapper {
	return &Mapper{
		rng:      rand.New(rand.NewSource(seed)),
		capacity: totalBytes >> PageBits,
		pages:    make(map[uint64]uint64),
		swapped:  make(map[uint64]uint64),
	}
}

// draw picks a uniformly random unused physical page in O(1) via an
// incremental Fisher-Yates shuffle.
func (m *Mapper) draw() (uint64, error) {
	if m.used >= m.capacity {
		return 0, fmt.Errorf("addrmap: out of physical pages (%d used)", m.used)
	}
	remaining := m.capacity - m.used
	j := m.used + uint64(m.rng.Int63n(int64(remaining)))
	vj, ok := m.swapped[j]
	if !ok {
		vj = j
	}
	vi, ok := m.swapped[m.used]
	if !ok {
		vi = m.used
	}
	m.swapped[j] = vi
	delete(m.swapped, m.used) // value consumed
	m.used++
	return vj, nil
}

// Translate maps a virtual byte address to its physical byte address,
// allocating a random physical page on first touch of each virtual page.
func (m *Mapper) Translate(vaddr uint64) (uint64, error) {
	vpage := vaddr >> PageBits
	ppage, ok := m.pages[vpage]
	if !ok {
		var err error
		ppage, err = m.draw()
		if err != nil {
			return 0, err
		}
		m.pages[vpage] = ppage
	}
	return ppage<<PageBits | (vaddr & (PageSize - 1)), nil
}

// TranslateRange maps a contiguous virtual range and returns the physical
// address of each page-contained fragment as (physAddr, length) pairs —
// a virtually contiguous buffer is physically scattered at page granularity.
func (m *Mapper) TranslateRange(vaddr uint64, size int) ([]Fragment, error) {
	var out []Fragment
	remaining := uint64(size)
	for remaining > 0 {
		p, err := m.Translate(vaddr)
		if err != nil {
			return nil, err
		}
		inPage := PageSize - (vaddr & (PageSize - 1))
		n := inPage
		if remaining < n {
			n = remaining
		}
		out = append(out, Fragment{Phys: p, Len: int(n)})
		vaddr += n
		remaining -= n
	}
	return out, nil
}

// Fragment is a physically contiguous piece of a translated range.
type Fragment struct {
	Phys uint64
	Len  int
}

// Mapped returns the number of virtual pages mapped so far.
func (m *Mapper) Mapped() int { return len(m.pages) }

// Package dram is a cycle-level DDR4 DRAM timing simulator — the
// repository's substitute for Ramulator in the paper's evaluation framework
// (§VI-B). It models per-bank state machines, bank-group-aware CAS and
// activate spacing (tCCD_S/L, tRRD_S/L), the four-activate window (tFAW),
// row-buffer hits and misses, and the data-bus occupancy that separates a
// conventional host-attached memory system (one data bus shared by all
// ranks) from rank-level NDP (each rank streams internally).
//
// The simulator is deliberately request-granular: callers submit line reads
// and writes with an earliest-start cycle, and the scheduler greedily
// places the ACT/PRE/CAS commands subject to every modeled constraint.
// Absolute latencies are approximate; the rank-parallelism, activation-rate
// and bus-occupancy effects that drive the paper's speedups are modeled
// exactly.
package dram

// Timing holds DDR4 timing parameters in memory-clock cycles, mirroring
// Table II of the paper.
type Timing struct {
	// ClockNS is the duration of one memory clock cycle in nanoseconds.
	ClockNS float64
	// TRC: ACT-to-ACT delay, same bank.
	TRC int
	// TRCD: ACT-to-CAS delay.
	TRCD int
	// TCL: CAS-to-data delay (read latency).
	TCL int
	// TRP: PRE-to-ACT delay.
	TRP int
	// TBL: burst length on the data bus in cycles (BL8 on a DDR bus = 4).
	TBL int
	// TCCDS / TCCDL: CAS-to-CAS, different / same bank group.
	TCCDS, TCCDL int
	// TRRDS / TRRDL: ACT-to-ACT, different / same bank group.
	TRRDS, TRRDL int
	// TFAW: window in which at most four ACTs may issue per rank.
	TFAW int
	// TRTP: READ-to-PRE delay (not in Table II; JEDEC-typical value).
	TRTP int
	// TWR: write recovery, data-end to PRE (JEDEC-typical).
	TWR int
	// TCWL: CAS write latency (JEDEC-typical, TCL-2).
	TCWL int
	// TREFI/TRFC: refresh interval and refresh cycle time. When TREFI is
	// nonzero, every rank is blocked for TRFC cycles at the start of each
	// TREFI window. Disabled (0) in the Table II configuration: the paper
	// does not list refresh parameters, and since every compared system
	// pays refresh identically it cancels out of all reported ratios. Use
	// DDR4_2400WithRefresh for absolute-latency studies.
	TREFI, TRFC int
}

// DDR4_2400 returns the configuration of Table II: DDR4-2400MHz with
// tRC=55, tRCD=16, tCL=16, tRP=16, tBL=4, tCCD_S=4, tCCD_L=6, tRRD_S=4,
// tRRD_L=6, tFAW=26. The memory clock is 1200 MHz (2400 MT/s).
func DDR4_2400() Timing {
	return Timing{
		ClockNS: 1.0 / 1.2, // 1200 MHz
		TRC:     55,
		TRCD:    16,
		TCL:     16,
		TRP:     16,
		TBL:     4,
		TCCDS:   4,
		TCCDL:   6,
		TRRDS:   4,
		TRRDL:   6,
		TFAW:    26,
		TRTP:    8,
		TWR:     18,
		TCWL:    14,
	}
}

// DDR4_2400WithRefresh is DDR4_2400 plus JEDEC refresh: tREFI = 7.8 µs
// (9360 cycles at 1200 MHz) and tRFC = 350 ns (420 cycles, 8 Gb devices).
func DDR4_2400WithRefresh() Timing {
	t := DDR4_2400()
	t.TREFI = 9360
	t.TRFC = 420
	return t
}

// TRAS is the minimum ACT-to-PRE delay, derived as tRC − tRP for
// consistency with Table II's parameter set.
func (t Timing) TRAS() int { return t.TRC - t.TRP }

// CyclesToNS converts a cycle count to nanoseconds.
func (t Timing) CyclesToNS(c int64) float64 { return float64(c) * t.ClockNS }

// NSToCycles converts nanoseconds to (rounded-up) cycles.
func (t Timing) NSToCycles(ns float64) int64 {
	c := ns / t.ClockNS
	ic := int64(c)
	if float64(ic) < c {
		ic++
	}
	return ic
}

// LineBandwidthGBs returns the peak data-bus bandwidth in GB/s for a
// 64-byte line every TBL cycles — 19.2 GB/s for DDR4-2400 on a 64-bit bus.
func (t Timing) LineBandwidthGBs(lineBytes int) float64 {
	return float64(lineBytes) / (float64(t.TBL) * t.ClockNS)
}

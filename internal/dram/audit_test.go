package dram

import (
	"math/rand"
	"sort"
	"testing"
)

// The constraint audit: replay the event trace of a random schedule and
// verify every modeled JEDEC constraint pairwise. This is the property
// test that keeps the backfilling scheduler honest — any calendar bug that
// lets two commands violate spacing shows up here.

type auditor struct {
	t      *testing.T
	timing Timing
	events []Event
}

func (a *auditor) audit() {
	a.checkACTSpacing()
	a.checkFAW()
	a.checkCCD()
	a.checkBankTimings()
	a.checkRefresh()
}

func (a *auditor) perRank(kind func(EventKind) bool) map[int][]Event {
	m := map[int][]Event{}
	for _, e := range a.events {
		if kind(e.Kind) {
			m[e.Rank] = append(m[e.Rank], e)
		}
	}
	for r := range m {
		sort.Slice(m[r], func(i, j int) bool { return m[r][i].Cycle < m[r][j].Cycle })
	}
	return m
}

func (a *auditor) checkACTSpacing() {
	for rank, acts := range a.perRank(func(k EventKind) bool { return k == EvACT }) {
		for i := 0; i < len(acts); i++ {
			for j := i + 1; j < len(acts); j++ {
				d := acts[j].Cycle - acts[i].Cycle
				if d >= int64(a.timing.TRRDL) {
					break // sorted: all further pairs are fine for both spacings
				}
				need := int64(a.timing.TRRDS)
				if acts[i].Group == acts[j].Group {
					need = int64(a.timing.TRRDL)
				}
				if d < need {
					a.t.Errorf("rank %d: ACTs %d cycles apart (groups %d/%d), need %d",
						rank, d, acts[i].Group, acts[j].Group, need)
				}
			}
		}
	}
}

func (a *auditor) checkFAW() {
	for rank, acts := range a.perRank(func(k EventKind) bool { return k == EvACT }) {
		for i := 0; i+4 < len(acts); i++ {
			if acts[i+4].Cycle-acts[i].Cycle < int64(a.timing.TFAW) {
				a.t.Errorf("rank %d: 5 ACTs within %d cycles (tFAW=%d)",
					rank, acts[i+4].Cycle-acts[i].Cycle, a.timing.TFAW)
			}
		}
	}
}

func (a *auditor) checkCCD() {
	for rank, cas := range a.perRank(func(k EventKind) bool { return k == EvRD || k == EvWR }) {
		for i := 0; i+1 < len(cas); i++ {
			d := cas[i+1].Cycle - cas[i].Cycle
			need := int64(a.timing.TCCDS)
			if cas[i].Group == cas[i+1].Group {
				need = int64(a.timing.TCCDL)
			}
			if d < need {
				// Same-group constraint also applies to non-adjacent pairs,
				// but adjacent is the binding case for a sorted trace with
				// spacing >= tCCD_S.
				a.t.Errorf("rank %d: CAS %d cycles apart (groups %d/%d), need %d",
					rank, d, cas[i].Group, cas[i+1].Group, need)
			}
		}
	}
}

func (a *auditor) checkBankTimings() {
	// Per bank: ACT-to-ACT >= tRC; every CAS lands >= tRCD after the
	// bank's most recent ACT to that row.
	type bankKey struct{ r, g, b int }
	byBank := map[bankKey][]Event{}
	for _, e := range a.events {
		k := bankKey{e.Rank, e.Group, e.Bank}
		byBank[k] = append(byBank[k], e)
	}
	for k, evs := range byBank {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Cycle < evs[j].Cycle })
		var lastACT int64 = -1 << 62
		haveACT := false
		for _, e := range evs {
			switch e.Kind {
			case EvACT:
				if haveACT && e.Cycle-lastACT < int64(a.timing.TRC) {
					a.t.Errorf("bank %v: ACT-to-ACT %d < tRC %d", k, e.Cycle-lastACT, a.timing.TRC)
				}
				lastACT, haveACT = e.Cycle, true
			case EvRD, EvWR:
				if haveACT && e.Cycle-lastACT < int64(a.timing.TRCD) {
					a.t.Errorf("bank %v: CAS %d cycles after ACT, need tRCD %d",
						k, e.Cycle-lastACT, a.timing.TRCD)
				}
			}
		}
	}
}

func (a *auditor) checkRefresh() {
	if a.timing.TREFI <= 0 {
		return
	}
	for _, e := range a.events {
		if e.Cycle%int64(a.timing.TREFI) < int64(a.timing.TRFC) {
			a.t.Errorf("command at cycle %d inside a refresh window", e.Cycle)
		}
	}
}

func runAudit(t *testing.T, tm Timing, mode BusMode, ranks int, accesses int, writes bool, seed int64) {
	t.Helper()
	s := NewSystem(tm, DefaultOrg(ranks), mode)
	a := &auditor{t: t, timing: tm}
	s.OnEvent = func(e Event) { a.events = append(a.events, e) }
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < accesses; i++ {
		addr := rng.Uint64() % s.Org.TotalBytes()
		earliest := int64(rng.Intn(200)) * int64(i) / int64(accesses+1)
		if writes && rng.Intn(4) == 0 {
			s.WriteLine(addr, earliest)
		} else {
			s.ReadLine(addr, earliest)
		}
	}
	a.audit()
}

func TestScheduleAuditRandomShared(t *testing.T) {
	runAudit(t, DDR4_2400(), SharedBus, 4, 2000, true, 1)
}

func TestScheduleAuditRandomRankBus(t *testing.T) {
	runAudit(t, DDR4_2400(), RankBus, 8, 2000, true, 2)
}

func TestScheduleAuditSingleRankHotBanks(t *testing.T) {
	// Hammer a single rank with bank conflicts: the worst case for the
	// calendars' backfilling.
	tm := DDR4_2400()
	s := NewSystem(tm, DefaultOrg(1), SharedBus)
	a := &auditor{t: t, timing: tm}
	s.OnEvent = func(e Event) { a.events = append(a.events, e) }
	rng := rand.New(rand.NewSource(3))
	rowStride := s.Org.TotalBytes() / s.Org.RowsPerBank
	for i := 0; i < 1500; i++ {
		// Only 2 banks, random rows: constant conflicts.
		bank := uint64(rng.Intn(2)) << 15
		row := uint64(rng.Intn(64)) * rowStride
		s.ReadLine(bank|row, 0)
	}
	a.audit()
}

func TestScheduleAuditWithRefresh(t *testing.T) {
	runAudit(t, DDR4_2400WithRefresh(), SharedBus, 2, 2000, true, 4)
	runAudit(t, DDR4_2400WithRefresh(), RankBus, 4, 2000, false, 5)
}

func TestScheduleAuditStreaming(t *testing.T) {
	tm := DDR4_2400()
	s := NewSystem(tm, DefaultOrg(2), RankBus)
	a := &auditor{t: t, timing: tm}
	s.OnEvent = func(e Event) { a.events = append(a.events, e) }
	for i := 0; i < 4000; i++ {
		s.ReadLine(uint64(i)*64, 0)
	}
	a.audit()
}

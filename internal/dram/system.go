package dram

import "fmt"

// BusMode selects how data leaves the DRAM devices.
type BusMode int

const (
	// SharedBus models a conventional host-attached channel: every rank's
	// data crosses one 64-bit channel data bus. This is the non-NDP
	// baseline's world.
	SharedBus BusMode = iota
	// RankBus models rank-level NDP: each rank streams into its own NDP PU
	// inside the DIMM buffer, so ranks have independent data-bus resources
	// and the channel carries only NDP packets and results.
	RankBus
)

type bank struct {
	openRow  int64 // -1 when closed
	lastAct  int64
	readyPre int64 // earliest PRE (tRAS / tRTP / tWR)
	readyAct int64 // earliest ACT (tRP after PRE, tRC after ACT)
}

type rank struct {
	banks []bank // BankGroups × BanksPerGroup, index g*BanksPerGroup+b
	acts  cmdCal // tRRD_S/L spacing + tFAW window
	cass  cmdCal // tCCD_S/L spacing
	bus   busCal // rank-internal data bus (RankBus mode)
}

// Stats aggregates scheduler activity for reporting and the energy model.
type Stats struct {
	Reads        uint64
	Writes       uint64
	Activates    uint64
	RowHits      uint64
	RowMisses    uint64
	BytesRead    uint64
	BytesWritten uint64
}

// EventKind tags a scheduled DRAM command in the event trace.
type EventKind int

const (
	// EvACT is a row activation.
	EvACT EventKind = iota
	// EvRD is a read CAS.
	EvRD
	// EvWR is a write CAS.
	EvWR
)

// Event is one scheduled command, emitted through System.OnEvent when set.
// Used by the constraint-audit tests and available for debugging.
type Event struct {
	Kind              EventKind
	Rank, Group, Bank int
	Row               uint64
	Cycle             int64
}

// Access reports the scheduling of one line transfer.
type Access struct {
	// Issue is the cycle of the first command issued for this access (the
	// ACT on a miss, the CAS on a hit).
	Issue int64
	// Done is the cycle the last data beat is transferred.
	Done int64
	// RowHit reports whether the access hit an open row.
	RowHit bool
}

// System is one memory channel: Org.Ranks ranks with per-bank timing state
// and backfilling command/bus calendars approximating an FR-FCFS
// controller. Command-bus bandwidth is intentionally not modeled: at
// 64-byte granularity the data bus and bank timings dominate (see DESIGN.md
// §2, Ramulator substitution).
// PagePolicy selects the row-buffer management policy.
type PagePolicy int

const (
	// OpenPage keeps rows open after a CAS, betting on locality (the
	// default; right for streaming and for vectors spanning lines).
	OpenPage PagePolicy = iota
	// ClosedPage auto-precharges after every CAS: random single-line
	// traffic never pays a conflict PRE, at the price of an ACT per
	// access. The A6 ablation in bench_test.go compares the two.
	ClosedPage
)

type System struct {
	T      Timing
	Org    Org
	Mode   BusMode
	Policy PagePolicy

	// OnEvent, when non-nil, receives every scheduled command. Auditing
	// and debugging hook; nil costs nothing.
	OnEvent func(Event)

	ranks   []rank
	chanBus busCal // channel data bus, SharedBus mode

	stats Stats
}

// NewSystem builds a channel simulator. Panics on an invalid organization
// (a construction-time programming error, not a runtime condition).
func NewSystem(t Timing, org Org, mode BusMode) *System {
	if err := org.Validate(); err != nil {
		panic(err)
	}
	s := &System{T: t, Org: org, Mode: mode}
	s.ranks = make([]rank, org.Ranks)
	nb := org.BankGroups * org.BanksPerGroup
	for i := range s.ranks {
		r := &s.ranks[i]
		r.banks = make([]bank, nb)
		for b := range r.banks {
			r.banks[b].openRow = -1
		}
		r.acts = cmdCal{
			sameSpacing: int64(t.TRRDL), diffSpacing: int64(t.TRRDS),
			windowLen: int64(t.TFAW), windowMax: 4,
		}
		r.cass = cmdCal{sameSpacing: int64(t.TCCDL), diffSpacing: int64(t.TCCDS)}
	}
	return s
}

// Stats returns cumulative counters.
func (s *System) Stats() Stats { return s.stats }

// ResetStats zeroes the counters (timing state is preserved).
func (s *System) ResetStats() { s.stats = Stats{} }

func (s *System) bus(rk *rank) *busCal {
	if s.Mode == SharedBus {
		return &s.chanBus
	}
	return &rk.bus
}

func max64(vals ...int64) int64 {
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// refreshClamp pushes a command time out of any refresh window: with
// refresh enabled, each rank is unavailable during the first TRFC cycles
// of every TREFI interval.
func (s *System) refreshClamp(t int64) int64 {
	if s.T.TREFI <= 0 {
		return t
	}
	refi, rfc := int64(s.T.TREFI), int64(s.T.TRFC)
	if off := t % refi; off < rfc {
		return t - off + rfc
	}
	return t
}

// openRow performs the PRE/ACT sequence (if needed) for coordinate c,
// returning the cycle from which CAS commands may target the row, and
// whether the access was a row hit. earliest lower-bounds every command.
func (s *System) openRow(c Coord, earliest int64) (casReady int64, hit bool) {
	rk := &s.ranks[c.Rank]
	bk := &rk.banks[c.Group*s.Org.BanksPerGroup+c.Bank]

	if bk.openRow == int64(c.Row) {
		// Row hit: CAS must still respect tRCD from the opening ACT.
		return bk.lastAct + int64(s.T.TRCD), true
	}

	at := earliest
	if bk.openRow >= 0 {
		// Conflict: precharge first.
		pre := max64(at, bk.readyPre)
		bk.readyAct = max64(bk.readyAct, pre+int64(s.T.TRP))
		bk.openRow = -1
	}

	// ACT, subject to per-bank tRC/tRP, the rank's tRRD/tFAW calendar, and
	// refresh windows.
	lb := s.refreshClamp(max64(at, bk.readyAct))
	var act int64
	for {
		cand := rk.acts.feasible(lb, c.Group)
		if cl := s.refreshClamp(cand); cl != cand {
			lb = cl
			continue
		}
		rk.acts.insert(cand, c.Group)
		act = cand
		break
	}

	bk.openRow = int64(c.Row)
	bk.lastAct = act
	bk.readyAct = act + int64(s.T.TRC)
	bk.readyPre = act + int64(s.T.TRAS())
	s.stats.Activates++
	if s.OnEvent != nil {
		s.OnEvent(Event{Kind: EvACT, Rank: c.Rank, Group: c.Group, Bank: c.Bank, Row: c.Row, Cycle: act})
	}
	return act + int64(s.T.TRCD), false
}

// scheduleCAS jointly places a CAS command (tCCD calendar) and its data
// burst (bus calendar), where the burst starts dataDelay cycles after the
// CAS. Returns the CAS cycle.
func (s *System) scheduleCAS(rk *rank, group int, lb, dataDelay int64) int64 {
	cas := lb
	for i := 0; i < 1000; i++ {
		c1 := rk.cass.feasible(cas, group)
		if cl := s.refreshClamp(c1); cl != c1 {
			cas = cl
			continue
		}
		busStart := s.bus(rk).gap(c1+dataDelay, int64(s.T.TBL))
		c2 := busStart - dataDelay
		if c2 == c1 {
			rk.cass.insert(c1, group)
			s.bus(rk).book(c1+dataDelay, int64(s.T.TBL))
			return c1
		}
		cas = c2
	}
	panic("dram: CAS scheduling did not converge")
}

// ReadLine schedules a full-line read of the line containing addr, starting
// no earlier than cycle earliest, and returns its scheduling. Done is the
// cycle the line's last beat lands — at the host in SharedBus mode, at the
// rank's NDP PU in RankBus mode.
func (s *System) ReadLine(addr uint64, earliest int64) Access {
	c := s.Org.Decode(addr)
	rk := &s.ranks[c.Rank]
	rowReady, hit := s.openRow(c, earliest)

	rd := s.scheduleCAS(rk, c.Group, max64(earliest, rowReady), int64(s.T.TCL))

	bk := &rk.banks[c.Group*s.Org.BanksPerGroup+c.Bank]
	bk.readyPre = max64(bk.readyPre, rd+int64(s.T.TRTP))
	if s.Policy == ClosedPage {
		// Auto-precharge: the row closes after the burst; the next ACT
		// waits for the implicit precharge to complete.
		bk.openRow = -1
		bk.readyAct = max64(bk.readyAct, bk.readyPre+int64(s.T.TRP))
	}
	if s.OnEvent != nil {
		s.OnEvent(Event{Kind: EvRD, Rank: c.Rank, Group: c.Group, Bank: c.Bank, Row: c.Row, Cycle: rd})
	}

	s.stats.Reads++
	s.stats.BytesRead += uint64(s.Org.LineBytes)
	if hit {
		s.stats.RowHits++
	} else {
		s.stats.RowMisses++
	}
	issue := rd
	if !hit {
		issue = bk.lastAct
	}
	return Access{Issue: issue, Done: rd + int64(s.T.TCL) + int64(s.T.TBL), RowHit: hit}
}

// WriteLine schedules a full-line write. Done is the cycle the last data
// beat is absorbed by the DRAM.
func (s *System) WriteLine(addr uint64, earliest int64) Access {
	c := s.Org.Decode(addr)
	rk := &s.ranks[c.Rank]
	rowReady, hit := s.openRow(c, earliest)

	wr := s.scheduleCAS(rk, c.Group, max64(earliest, rowReady), int64(s.T.TCWL))
	dataEnd := wr + int64(s.T.TCWL) + int64(s.T.TBL)
	bk := &rk.banks[c.Group*s.Org.BanksPerGroup+c.Bank]
	bk.readyPre = max64(bk.readyPre, dataEnd+int64(s.T.TWR))
	if s.Policy == ClosedPage {
		bk.openRow = -1
		bk.readyAct = max64(bk.readyAct, bk.readyPre+int64(s.T.TRP))
	}
	if s.OnEvent != nil {
		s.OnEvent(Event{Kind: EvWR, Rank: c.Rank, Group: c.Group, Bank: c.Bank, Row: c.Row, Cycle: wr})
	}

	s.stats.Writes++
	s.stats.BytesWritten += uint64(s.Org.LineBytes)
	if hit {
		s.stats.RowHits++
	} else {
		s.stats.RowMisses++
	}
	issue := wr
	if !hit {
		issue = bk.lastAct
	}
	return Access{Issue: issue, Done: dataEnd, RowHit: hit}
}

// ReadRange reads every line of [addr, addr+size) and returns the cycle the
// last line lands, with all lines constrained to start at or after earliest.
func (s *System) ReadRange(addr uint64, size int, earliest int64) int64 {
	var done int64
	for _, la := range s.Org.LineAddrs(addr, size) {
		if d := s.ReadLine(la, earliest).Done; d > done {
			done = d
		}
	}
	return done
}

// String summarizes the configuration.
func (s *System) String() string {
	return fmt.Sprintf("dram.System{ranks=%d mode=%d %0.0fMHz}", s.Org.Ranks, s.Mode, 1000/s.T.ClockNS)
}

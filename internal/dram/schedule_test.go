package dram

import (
	"math/rand"
	"testing"
)

func TestCmdCalSpacingSameGroup(t *testing.T) {
	c := cmdCal{sameSpacing: 6, diffSpacing: 4}
	t1 := c.place(0, 0)
	t2 := c.place(0, 0) // same group: spacing 6
	if t2-t1 < 6 {
		t.Errorf("same-group spacing %d < 6", t2-t1)
	}
	t3 := c.place(0, 1) // different group: spacing 4 from both
	for _, prev := range []int64{t1, t2} {
		d := t3 - prev
		if d < 0 {
			d = -d
		}
		if d < 4 {
			t.Errorf("diff-group spacing %d < 4", d)
		}
	}
}

func TestCmdCalBackfill(t *testing.T) {
	c := cmdCal{sameSpacing: 4, diffSpacing: 4}
	c.place(0, 0)
	c.place(100, 0)
	// A request with lb=0 should backfill between the two, not queue after.
	got := c.place(0, 0)
	if got >= 100 {
		t.Errorf("no backfill: placed at %d", got)
	}
	if got < 4 {
		t.Errorf("backfill violated spacing: %d", got)
	}
}

func TestCmdCalWindow(t *testing.T) {
	// tFAW-style: at most 4 in any 26 cycles.
	c := cmdCal{sameSpacing: 4, diffSpacing: 4, windowLen: 26, windowMax: 4}
	var times []int64
	for i := 0; i < 12; i++ {
		times = append(times, c.place(0, i%4))
	}
	for i := 0; i+4 < len(times); i++ {
		// times returned by successive places with lb=0 are increasing here
		if times[i+4]-times[i] < 26 {
			t.Fatalf("5 ACTs within %d cycles (window violated): %v", times[i+4]-times[i], times)
		}
	}
}

func TestCmdCalWindowRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := cmdCal{sameSpacing: 4, diffSpacing: 4, windowLen: 26, windowMax: 4}
	var times []int64
	for i := 0; i < 200; i++ {
		lb := int64(rng.Intn(50)) + int64(i)
		times = append(times, c.place(lb, rng.Intn(4)))
	}
	// Verify globally: sort and check every 5-run.
	for i := 0; i < len(times); i++ {
		for j := i + 1; j < len(times); j++ {
			if times[j] < times[i] {
				times[i], times[j] = times[j], times[i]
			}
		}
	}
	for i := 0; i+4 < len(times); i++ {
		if times[i+4]-times[i] < 26 {
			t.Fatalf("window violated at %d: %v", i, times[i:i+5])
		}
	}
}

func TestCmdCalFloor(t *testing.T) {
	c := cmdCal{sameSpacing: 1, diffSpacing: 1}
	var last int64
	for i := 0; i < 2000; i++ {
		last = c.place(int64(i*2), 0)
	}
	// After pruning, an ancient lb cannot schedule before the floor.
	got := c.place(0, 0)
	if got < last-pruneWindow {
		t.Errorf("scheduled at %d, before the pruned floor", got)
	}
}

func TestBusCalReserveNoOverlap(t *testing.T) {
	var b busCal
	rng := rand.New(rand.NewSource(2))
	var booked [][2]int64
	for i := 0; i < 300; i++ {
		lb := int64(rng.Intn(100))
		start := b.reserve(lb, 4)
		if start < lb {
			t.Fatalf("reserved at %d before lb %d", start, lb)
		}
		booked = append(booked, [2]int64{start, start + 4})
	}
	for i := range booked {
		for j := i + 1; j < len(booked); j++ {
			lo := max64(booked[i][0], booked[j][0])
			hi := booked[i][1]
			if booked[j][1] < hi {
				hi = booked[j][1]
			}
			if lo < hi {
				t.Fatalf("intervals overlap: %v %v", booked[i], booked[j])
			}
		}
	}
}

func TestBusCalBackfillsGaps(t *testing.T) {
	var b busCal
	b.reserve(0, 4)
	b.reserve(100, 4)
	got := b.reserve(0, 4)
	if got >= 100 {
		t.Errorf("gap between 4 and 100 not used: %d", got)
	}
}

func TestBusCalExactFit(t *testing.T) {
	var b busCal
	b.reserve(0, 4) // [0,4)
	b.reserve(8, 4) // [8,12)
	got := b.reserve(0, 4)
	if got != 4 {
		t.Errorf("exact 4-cycle gap at 4 not used: got %d", got)
	}
}

func BenchmarkReadLineRandom(b *testing.B) {
	s := NewSystem(DDR4_2400(), DefaultOrg(8), SharedBus)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ReadLine(rng.Uint64()%s.Org.TotalBytes(), 0)
	}
}

func BenchmarkReadLineStream(b *testing.B) {
	s := NewSystem(DDR4_2400(), DefaultOrg(8), RankBus)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ReadLine(uint64(i)*64, 0)
	}
}

func TestCmdCalWindowFullyRandomLB(t *testing.T) {
	// Regression for the prune-floor bug: placements clamped to the floor
	// must not violate tFAW against records dropped just below the cut.
	rng := rand.New(rand.NewSource(99))
	c := cmdCal{sameSpacing: 6, diffSpacing: 4, windowLen: 26, windowMax: 4}
	var times []int64
	for i := 0; i < 500; i++ {
		lb := int64(rng.Intn(3000))
		times = append(times, c.place(lb, rng.Intn(4)))
	}
	for i := 0; i < len(times); i++ {
		for j := i + 1; j < len(times); j++ {
			if times[j] < times[i] {
				times[i], times[j] = times[j], times[i]
			}
		}
	}
	for i := 0; i+4 < len(times); i++ {
		if times[i+4]-times[i] < 26 {
			t.Fatalf("tFAW violated at %d: %v", i, times[i:i+5])
		}
	}
}

package dram

import (
	"math/rand"
	"testing"
)

func TestTimingDDR4Values(t *testing.T) {
	tm := DDR4_2400()
	if tm.TRC != 55 || tm.TRCD != 16 || tm.TCL != 16 || tm.TRP != 16 ||
		tm.TBL != 4 || tm.TCCDS != 4 || tm.TCCDL != 6 || tm.TFAW != 26 {
		t.Errorf("Table II parameters wrong: %+v", tm)
	}
	if tm.TRAS() != 39 {
		t.Errorf("TRAS = %d, want 55-16", tm.TRAS())
	}
}

func TestTimingConversions(t *testing.T) {
	tm := DDR4_2400()
	ns := tm.CyclesToNS(1200)
	if ns < 999 || ns > 1001 {
		t.Errorf("1200 cycles = %f ns, want ~1000", ns)
	}
	if c := tm.NSToCycles(1.0); c != 2 {
		t.Errorf("NSToCycles(1) = %d, want 2 (round up)", c)
	}
	bw := tm.LineBandwidthGBs(64)
	if bw < 19.1 || bw > 19.3 {
		t.Errorf("peak bandwidth %f GB/s, want 19.2", bw)
	}
}

func TestOrgCapacity(t *testing.T) {
	o := DefaultOrg(8)
	if got := o.RankBytes(); got != 8<<30 {
		t.Errorf("rank size = %d, want 8 GiB", got)
	}
	if got := o.TotalBytes(); got != 64<<30 {
		t.Errorf("total = %d, want 64 GiB", got)
	}
}

func TestOrgValidate(t *testing.T) {
	if err := DefaultOrg(8).Validate(); err != nil {
		t.Errorf("default org invalid: %v", err)
	}
	bad := DefaultOrg(3)
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two ranks accepted")
	}
	bad2 := DefaultOrg(2)
	bad2.RowsPerBank = 1000
	if err := bad2.Validate(); err == nil {
		t.Error("non-power-of-two rows accepted")
	}
}

func TestDecodeFieldsInRange(t *testing.T) {
	o := DefaultOrg(4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		c := o.Decode(rng.Uint64())
		if c.Rank < 0 || c.Rank >= 4 || c.Group < 0 || c.Group >= 4 ||
			c.Bank < 0 || c.Bank >= 4 || c.Col < 0 || c.Col >= 128 ||
			c.Row >= o.RowsPerBank {
			t.Fatalf("decode out of range: %+v", c)
		}
	}
}

func TestDecodeConsecutiveLinesAlternateGroups(t *testing.T) {
	o := DefaultOrg(8)
	c0 := o.Decode(0)
	c1 := o.Decode(64)
	if c0.Group == c1.Group {
		t.Error("adjacent lines share a bank group; streaming would pace at tCCD_L")
	}
	if c0.Rank != c1.Rank || c0.Row != c1.Row {
		t.Error("adjacent lines should stay in the same rank and row index")
	}
}

func TestDecodeInjectiveOverLines(t *testing.T) {
	o := DefaultOrg(2)
	seen := make(map[Coord]uint64)
	for a := uint64(0); a < 1<<20; a += 64 {
		c := o.Decode(a)
		if prev, dup := seen[c]; dup {
			t.Fatalf("addresses %#x and %#x decode to the same coordinate %+v", prev, a, c)
		}
		seen[c] = a
	}
}

func TestLineAddrs(t *testing.T) {
	o := DefaultOrg(1)
	// 128 bytes starting mid-line spans 3 lines.
	got := o.LineAddrs(32, 128)
	want := []uint64{0, 64, 128}
	if len(got) != len(want) {
		t.Fatalf("LineAddrs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LineAddrs = %v, want %v", got, want)
		}
	}
	if got := o.LineAddrs(64, 64); len(got) != 1 || got[0] != 64 {
		t.Errorf("aligned single line: %v", got)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	tm := DDR4_2400()
	s := NewSystem(tm, DefaultOrg(1), SharedBus)
	first := s.ReadLine(0, 0) // cold miss
	if first.RowHit {
		t.Error("first access reported as a row hit")
	}
	// Same row (adjacent line in the same group is +256 here; use +128*64
	// stride to revisit the same group+row): address 0 and 256 share group 0.
	second := s.ReadLine(256, first.Done)
	if !second.RowHit {
		t.Fatalf("same-row access not a hit: %+v vs %+v", s.Org.Decode(0), s.Org.Decode(256))
	}
	hitLat := second.Done - first.Done
	missLat := first.Done - int64(0)
	if hitLat >= missLat {
		t.Errorf("row hit latency %d !< miss latency %d", hitLat, missLat)
	}
}

func TestRowConflictRespectsTRC(t *testing.T) {
	tm := DDR4_2400()
	s := NewSystem(tm, DefaultOrg(1), SharedBus)
	o := s.Org
	// Two different rows of the same bank: same group/bank, different row.
	rowStride := o.TotalBytes() / o.RowsPerBank // increment row bits only
	a1 := s.ReadLine(0, 0)
	a2 := s.ReadLine(rowStride, 0)
	if a2.RowHit {
		t.Fatal("different row reported as hit")
	}
	if a2.Issue-a1.Issue < int64(tm.TRC) {
		t.Errorf("ACT-to-ACT same bank = %d cycles, want >= tRC=%d", a2.Issue-a1.Issue, tm.TRC)
	}
}

func TestStreamingPacedByBus(t *testing.T) {
	// Sequential lines alternate bank groups, so CAS paces at tCCD_S = tBL
	// and the data bus is the limit: N lines should take ~N*tBL cycles.
	tm := DDR4_2400()
	s := NewSystem(tm, DefaultOrg(1), SharedBus)
	const n = 256
	var done int64
	for i := 0; i < n; i++ {
		done = s.ReadLine(uint64(i*64), 0).Done
	}
	perLine := float64(done) / n
	if perLine > float64(tm.TBL)*1.3 {
		t.Errorf("streaming cost %.2f cycles/line, want near tBL=%d", perLine, tm.TBL)
	}
	st := s.Stats()
	if st.RowHits < n-n/16 {
		t.Errorf("streaming row hits = %d of %d", st.RowHits, n)
	}
}

func TestRandomAccessActivationLimited(t *testing.T) {
	// Random rows in ONE rank: tFAW allows at most 4 ACTs per 26 cycles.
	tm := DDR4_2400()
	s := NewSystem(tm, DefaultOrg(1), SharedBus)
	rng := rand.New(rand.NewSource(2))
	const n = 512
	var done int64
	for i := 0; i < n; i++ {
		// Random row, random bank: one line each (row miss almost surely).
		addr := rng.Uint64() % s.Org.TotalBytes()
		done = s.ReadLine(addr, 0).Done
	}
	rate := float64(n) / float64(done) // lines per cycle
	maxRate := 4.0 / float64(tm.TFAW)
	if rate > maxRate*1.05 {
		t.Errorf("activation rate %.4f exceeds tFAW bound %.4f", rate, maxRate)
	}
	// And it should be near the bound, not far below (banks are plentiful).
	if rate < maxRate*0.6 {
		t.Errorf("activation rate %.4f far below tFAW bound %.4f", rate, maxRate)
	}
}

func TestRankBusScalesThroughput(t *testing.T) {
	// The structural claim behind NDP speedup: streaming all ranks in
	// parallel is ~R× faster with per-rank buses than with the shared bus.
	tm := DDR4_2400()
	const ranks = 8
	const linesPerRank = 128

	run := func(mode BusMode) int64 {
		s := NewSystem(tm, DefaultOrg(ranks), mode)
		rankStride := uint64(1) << 17 // rank bits start at bit 17 in this org
		var done int64
		for i := 0; i < linesPerRank; i++ {
			for r := 0; r < ranks; r++ {
				a := s.ReadLine(uint64(r)*rankStride+uint64(i*64), 0)
				if a.Done > done {
					done = a.Done
				}
			}
		}
		return done
	}
	shared := run(SharedBus)
	perRank := run(RankBus)
	speedup := float64(shared) / float64(perRank)
	if speedup < float64(ranks)*0.7 {
		t.Errorf("rank-bus speedup %.2f, want near %d", speedup, ranks)
	}
}

func TestRankBitPosition(t *testing.T) {
	// Confirms the stride assumption used above: bit 17 toggles the rank.
	o := DefaultOrg(8)
	if o.Decode(0).Rank == o.Decode(1<<17).Rank {
		t.Fatalf("bit 17 does not change rank: %+v vs %+v", o.Decode(0), o.Decode(1<<17))
	}
}

func TestWriteLine(t *testing.T) {
	tm := DDR4_2400()
	s := NewSystem(tm, DefaultOrg(1), SharedBus)
	a := s.WriteLine(0, 0)
	if a.Done <= a.Issue {
		t.Error("write completed before issue")
	}
	st := s.Stats()
	if st.Writes != 1 || st.BytesWritten != 64 {
		t.Errorf("write stats: %+v", st)
	}
	// Write-to-precharge: a conflicting row in the same bank must wait tWR.
	rowStride := s.Org.TotalBytes() / s.Org.RowsPerBank
	b := s.ReadLine(rowStride, 0)
	if b.Issue < a.Done+int64(tm.TWR) {
		t.Errorf("ACT at %d ignored tWR after write data end %d", b.Issue, a.Done)
	}
}

func TestReadRange(t *testing.T) {
	tm := DDR4_2400()
	s := NewSystem(tm, DefaultOrg(1), SharedBus)
	done := s.ReadRange(0, 256, 0) // 4 lines
	if s.Stats().Reads != 4 {
		t.Errorf("ReadRange issued %d reads, want 4", s.Stats().Reads)
	}
	if done <= 0 {
		t.Error("ReadRange returned non-positive completion")
	}
}

func TestEarliestRespected(t *testing.T) {
	tm := DDR4_2400()
	s := NewSystem(tm, DefaultOrg(1), SharedBus)
	a := s.ReadLine(0, 1000)
	if a.Issue < 1000 {
		t.Errorf("command issued at %d before earliest 1000", a.Issue)
	}
}

func TestStatsRowHitMissAccounting(t *testing.T) {
	tm := DDR4_2400()
	s := NewSystem(tm, DefaultOrg(1), SharedBus)
	s.ReadLine(0, 0)   // miss
	s.ReadLine(256, 0) // hit (same group, row)
	st := s.Stats()
	if st.RowHits != 1 || st.RowMisses != 1 || st.Activates != 1 || st.Reads != 2 {
		t.Errorf("stats = %+v", st)
	}
	s.ResetStats()
	if s.Stats() != (Stats{}) {
		t.Error("ResetStats failed")
	}
}

func TestNewSystemPanicsOnBadOrg(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid org did not panic")
		}
	}()
	NewSystem(DDR4_2400(), DefaultOrg(3), SharedBus)
}

func TestDataBusNeverOverlaps(t *testing.T) {
	// Reconstruct bus occupancy from returned Done cycles: in SharedBus
	// mode, no two transfers' [Done-tBL, Done) windows may overlap.
	tm := DDR4_2400()
	s := NewSystem(tm, DefaultOrg(2), SharedBus)
	rng := rand.New(rand.NewSource(3))
	var windows [][2]int64
	for i := 0; i < 200; i++ {
		a := s.ReadLine(rng.Uint64()%s.Org.TotalBytes(), 0)
		windows = append(windows, [2]int64{a.Done - int64(tm.TBL), a.Done})
	}
	for i := 0; i < len(windows); i++ {
		for j := i + 1; j < len(windows); j++ {
			lo := max64(windows[i][0], windows[j][0])
			hi := windows[i][1]
			if windows[j][1] < hi {
				hi = windows[j][1]
			}
			if lo < hi {
				t.Fatalf("bus windows overlap: %v and %v", windows[i], windows[j])
			}
		}
	}
}

func TestRefreshDisabledByDefault(t *testing.T) {
	tm := DDR4_2400()
	if tm.TREFI != 0 {
		t.Error("Table II config should not enable refresh")
	}
	r := DDR4_2400WithRefresh()
	if r.TREFI != 9360 || r.TRFC != 420 {
		t.Errorf("refresh parameters %d/%d", r.TREFI, r.TRFC)
	}
}

func TestRefreshBlocksCommands(t *testing.T) {
	tm := DDR4_2400WithRefresh()
	s := NewSystem(tm, DefaultOrg(1), SharedBus)
	// A request arriving inside the first refresh window must wait for it.
	a := s.ReadLine(0, 10) // cycle 10 < tRFC=420
	if a.Issue < int64(tm.TRFC) {
		t.Errorf("command issued at %d inside the refresh window [0,%d)", a.Issue, tm.TRFC)
	}
}

func TestRefreshThroughputTax(t *testing.T) {
	// Streaming throughput drops by roughly tRFC/tREFI (~4.5%) with
	// refresh on; both compared systems pay it, so ratios are stable.
	run := func(tm Timing) int64 {
		s := NewSystem(tm, DefaultOrg(1), SharedBus)
		var done int64
		for i := 0; i < 20000; i++ {
			done = s.ReadLine(uint64(i)*64, 0).Done
		}
		return done
	}
	off := run(DDR4_2400())
	on := run(DDR4_2400WithRefresh())
	tax := float64(on-off) / float64(off)
	if tax < 0.02 || tax > 0.08 {
		t.Errorf("refresh throughput tax %.3f, want ~0.045", tax)
	}
}

func TestClosedPageNeverHits(t *testing.T) {
	tm := DDR4_2400()
	s := NewSystem(tm, DefaultOrg(1), SharedBus)
	s.Policy = ClosedPage
	s.ReadLine(0, 0)
	a := s.ReadLine(256, 0) // same row in open-page terms
	if a.RowHit {
		t.Error("closed-page policy produced a row hit")
	}
	if s.Stats().RowHits != 0 {
		t.Errorf("closed-page hits = %d", s.Stats().RowHits)
	}
}

func TestPagePolicyTradeoff(t *testing.T) {
	// Streaming favors open page; the policies must diverge in the right
	// direction, and closed page must still satisfy the audit.
	tm := DDR4_2400()
	stream := func(p PagePolicy) int64 {
		s := NewSystem(tm, DefaultOrg(1), SharedBus)
		s.Policy = p
		var done int64
		for i := 0; i < 512; i++ {
			done = s.ReadLine(uint64(i)*64, 0).Done
		}
		return done
	}
	if open, closed := stream(OpenPage), stream(ClosedPage); closed <= open {
		t.Errorf("streaming: closed page (%d) should be slower than open (%d)", closed, open)
	}
}

func TestScheduleAuditClosedPage(t *testing.T) {
	tm := DDR4_2400()
	s := NewSystem(tm, DefaultOrg(2), SharedBus)
	s.Policy = ClosedPage
	a := &auditor{t: t, timing: tm}
	s.OnEvent = func(e Event) { a.events = append(a.events, e) }
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 1500; i++ {
		s.ReadLine(rng.Uint64()%s.Org.TotalBytes(), 0)
	}
	a.audit()
}

package dram

import "fmt"

// Org describes the DRAM organization and the physical-address-to-DRAM
// coordinate mapping. The default (see DefaultOrg) is an 8 GB DDR4 rank of
// 4 bank groups × 4 banks, 8 KiB rows, with the address bits laid out
// low-to-high as
//
//	[ line offset | bank group | column | bank | rank | row ]
//
// Placing the bank-group bits immediately above the line offset interleaves
// consecutive lines across bank groups, so streaming reads pace at tCCD_S
// (which equals tBL) and saturate the data bus — the standard DDR4
// controller mapping choice.
type Org struct {
	Ranks         int
	BankGroups    int
	BanksPerGroup int
	// RowsPerBank is the number of DRAM rows per bank.
	RowsPerBank uint64
	// ColumnsPerRow is the number of cache lines per row buffer.
	ColumnsPerRow int
	// LineBytes is the transfer granule (cache line), 64.
	LineBytes int
}

// DefaultOrg returns the Table II organization: rank_size = 8 GB, with the
// given number of ranks on the channel (NDP_rank in the paper).
func DefaultOrg(ranks int) Org {
	return Org{
		Ranks:         ranks,
		BankGroups:    4,
		BanksPerGroup: 4,
		// 8 GB / 16 banks / 8 KiB rows = 64 Ki rows per bank.
		RowsPerBank:   64 << 10,
		ColumnsPerRow: 128, // 8 KiB row / 64 B line
		LineBytes:     64,
	}
}

// Validate checks the organization for power-of-two field widths, which the
// bit-sliced decode requires.
func (o Org) Validate() error {
	for name, v := range map[string]int{
		"Ranks": o.Ranks, "BankGroups": o.BankGroups, "BanksPerGroup": o.BanksPerGroup,
		"ColumnsPerRow": o.ColumnsPerRow, "LineBytes": o.LineBytes,
	} {
		if v <= 0 || v&(v-1) != 0 {
			return fmt.Errorf("dram: %s = %d must be a positive power of two", name, v)
		}
	}
	if o.RowsPerBank == 0 || o.RowsPerBank&(o.RowsPerBank-1) != 0 {
		return fmt.Errorf("dram: RowsPerBank = %d must be a positive power of two", o.RowsPerBank)
	}
	return nil
}

// RankBytes returns the capacity of one rank.
func (o Org) RankBytes() uint64 {
	return uint64(o.BankGroups) * uint64(o.BanksPerGroup) * o.RowsPerBank *
		uint64(o.ColumnsPerRow) * uint64(o.LineBytes)
}

// TotalBytes returns the channel capacity.
func (o Org) TotalBytes() uint64 { return o.RankBytes() * uint64(o.Ranks) }

// Coord is a decoded DRAM coordinate.
type Coord struct {
	Rank, Group, Bank int
	Row               uint64
	Col               int
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Decode maps a physical byte address to its DRAM coordinate using the
// package's bit layout. Addresses beyond the channel capacity wrap.
func (o Org) Decode(addr uint64) Coord {
	a := addr % o.TotalBytes()
	a >>= log2(uint64(o.LineBytes))
	group := int(a & uint64(o.BankGroups-1))
	a >>= log2(uint64(o.BankGroups))
	col := int(a & uint64(o.ColumnsPerRow-1))
	a >>= log2(uint64(o.ColumnsPerRow))
	bank := int(a & uint64(o.BanksPerGroup-1))
	a >>= log2(uint64(o.BanksPerGroup))
	rank := int(a & uint64(o.Ranks-1))
	a >>= log2(uint64(o.Ranks))
	row := a & (o.RowsPerBank - 1)
	return Coord{Rank: rank, Group: group, Bank: bank, Row: row, Col: col}
}

// LineAddrs expands a byte range [addr, addr+size) into the line-granular
// addresses it touches.
func (o Org) LineAddrs(addr uint64, size int) []uint64 {
	lb := uint64(o.LineBytes)
	first := addr &^ (lb - 1)
	last := (addr + uint64(size) - 1) &^ (lb - 1)
	var out []uint64
	for a := first; a <= last; a += lb {
		out = append(out, a)
	}
	return out
}

package dram

// This file implements the backfilling schedulers that stand in for an
// FR-FCFS memory controller: rank-level constraint calendars that let a
// younger request slip into an idle slot instead of queuing behind an older
// request that is stalled on a bank conflict (the head-of-line blocking a
// frontier-only model would suffer).

// pruneWindow is how far behind the newest scheduled command the calendars
// keep history. Every modeled pairwise constraint spans at most tRC (55)
// cycles, so 512 is generous. Entries older than the window are dropped and
// the dropped region becomes a floor: nothing can be scheduled there
// anymore (conservative — it behaves like a fully busy past).
const pruneWindow = 512

// cmdRec is a scheduled ACT or CAS command.
type cmdRec struct {
	t     int64
	group int
}

// cmdCal is a calendar of scheduled commands with pairwise spacing
// constraints (tRRD for ACTs, tCCD for CASes) that depend on bank-group
// equality, plus an optional sliding-window cap (tFAW for ACTs).
type cmdCal struct {
	recs []cmdRec // sorted by t
	// floor: times before this are unschedulable (pruned history).
	floor int64
	// required spacing to commands in the same / a different bank group.
	sameSpacing, diffSpacing int64
	// windowLen/windowMax: at most windowMax commands in any half-open
	// windowLen span. Zero windowLen disables the check (CAS calendars).
	windowLen int64
	windowMax int
}

// feasible returns the earliest t >= lb at which a command of the given
// group could be inserted without violating any constraint. No insertion.
func (c *cmdCal) feasible(lb int64, group int) int64 {
	t := lb
	if t < c.floor {
		t = c.floor
	}
	for {
		moved := false
		for _, r := range c.recs {
			sp := c.diffSpacing
			if r.group == group {
				sp = c.sameSpacing
			}
			if t > r.t-sp && t < r.t+sp {
				t = r.t + sp
				moved = true
			}
		}
		if c.windowLen > 0 && c.windowOverfull(t) {
			t = c.windowBump(t)
			moved = true
		}
		if !moved {
			return t
		}
	}
}

// windowOverfull reports whether inserting a command at t would create a
// span of windowMax+1 commands within windowLen cycles.
func (c *cmdCal) windowOverfull(t int64) bool {
	// Count scheduled commands in (t-windowLen, t+windowLen) around t and
	// check every windowMax+1-wide run including t.
	times := c.timesWith(t)
	for i := 0; i+c.windowMax < len(times); i++ {
		lo, hi := times[i], times[i+c.windowMax]
		if hi-lo < c.windowLen && t >= lo && t <= hi {
			return true
		}
	}
	return false
}

// windowBump pushes t past the earliest over-full window it participates in.
func (c *cmdCal) windowBump(t int64) int64 {
	times := c.timesWith(t)
	for i := 0; i+c.windowMax < len(times); i++ {
		lo, hi := times[i], times[i+c.windowMax]
		if hi-lo < c.windowLen && t >= lo && t <= hi {
			return lo + c.windowLen
		}
	}
	return t
}

// timesWith returns the scheduled times with t merged in, sorted.
func (c *cmdCal) timesWith(t int64) []int64 {
	times := make([]int64, 0, len(c.recs)+1)
	ins := false
	for _, r := range c.recs {
		if !ins && r.t > t {
			times = append(times, t)
			ins = true
		}
		times = append(times, r.t)
	}
	if !ins {
		times = append(times, t)
	}
	return times
}

// insert records a command at t (t must come from feasible).
func (c *cmdCal) insert(t int64, group int) {
	i := len(c.recs)
	for i > 0 && c.recs[i-1].t > t {
		i--
	}
	c.recs = append(c.recs, cmdRec{})
	copy(c.recs[i+1:], c.recs[i:])
	c.recs[i] = cmdRec{t: t, group: group}
	c.pruneTo(c.recs[len(c.recs)-1].t - pruneWindow)
}

// place is feasible followed by insert.
func (c *cmdCal) place(lb int64, group int) int64 {
	t := c.feasible(lb, group)
	c.insert(t, group)
	return t
}

// constraintSpan is the farthest a dropped record could still constrain a
// new command: the window length (tFAW) or the largest pairwise spacing.
func (c *cmdCal) constraintSpan() int64 {
	span := c.sameSpacing
	if c.diffSpacing > span {
		span = c.diffSpacing
	}
	if c.windowLen > span {
		span = c.windowLen
	}
	return span
}

func (c *cmdCal) pruneTo(cut int64) {
	// The floor must sit a full constraint span above the cut: a record
	// just below the cut is forgotten, so nothing may be scheduled close
	// enough to have conflicted with it.
	floor := cut + c.constraintSpan()
	if floor <= c.floor {
		return
	}
	i := 0
	for i < len(c.recs) && c.recs[i].t < cut {
		i++
	}
	if i > 0 {
		c.recs = append(c.recs[:0], c.recs[i:]...)
	}
	c.floor = floor
}

// busCal is a calendar of busy intervals on a data bus with first-fit gap
// reservation.
type busCal struct {
	iv    [][2]int64 // sorted, non-overlapping [start, end)
	floor int64
}

// gap returns the earliest start >= lb of a dur-cycle idle gap. No booking.
func (b *busCal) gap(lb, dur int64) int64 {
	t := lb
	if t < b.floor {
		t = b.floor
	}
	for _, iv := range b.iv {
		if t+dur <= iv[0] {
			return t
		}
		if t < iv[1] {
			t = iv[1]
		}
	}
	return t
}

// book reserves [t, t+dur). t must come from gap.
func (b *busCal) book(t, dur int64) {
	i := len(b.iv)
	for j, iv := range b.iv {
		if iv[0] > t {
			i = j
			break
		}
	}
	b.iv = append(b.iv, [2]int64{})
	copy(b.iv[i+1:], b.iv[i:])
	b.iv[i] = [2]int64{t, t + dur}
	if last := b.iv[len(b.iv)-1][1]; last-pruneWindow > b.floor {
		b.pruneTo(last - pruneWindow)
	}
}

// reserve is gap followed by book, returning the start.
func (b *busCal) reserve(lb, dur int64) int64 {
	t := b.gap(lb, dur)
	b.book(t, dur)
	return t
}

func (b *busCal) pruneTo(cut int64) {
	i := 0
	for i < len(b.iv) && b.iv[i][1] <= cut {
		i++
	}
	if i > 0 {
		b.iv = append(b.iv[:0], b.iv[i:]...)
	}
	b.floor = cut
}

package tee

import (
	"testing"
)

func TestCPUTime(t *testing.T) {
	c := CPU{GFLOPS: 100}
	if got := c.TimeNS(1e9); got != 1e7 {
		t.Errorf("1 GFLOP at 100 GFLOPS = %f ns", got)
	}
}

func TestCPUTimePanicsOnBadThroughput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	CPU{}.TimeNS(1)
}

func TestICLComputePhase(t *testing.T) {
	m := IceLake()
	p := Phase{BaselineNS: 1000, MemoryBound: false, WorkingSetBytes: 1 << 20}
	got := m.Slowdown(p)
	// "When the workload fits in caches... SGX ICL has about 5% slowdown."
	if got < 1.04 || got > 1.06 {
		t.Errorf("ICL cache-resident slowdown %.3f, want ~1.05", got)
	}
}

func TestICLMemoryPhaseNoPaging(t *testing.T) {
	m := IceLake()
	p := Phase{
		BaselineNS:      1e6,
		MemoryBound:     true,
		WorkingSetBytes: 8 << 30, // fits the 96 GB EPC
		PageTouches:     1 << 20,
	}
	got := m.Slowdown(p)
	// Paper: 1.8–2.6× slowdown for ICL on these workloads.
	if got < 1.7 || got > 2.7 {
		t.Errorf("ICL memory-bound slowdown %.2f, want 1.8–2.6", got)
	}
}

func TestCFLCollapsesBeyondEPC(t *testing.T) {
	m := CoffeeLake()
	small := Phase{BaselineNS: 1e6, MemoryBound: true, WorkingSetBytes: 32 << 20, PageTouches: 10000}
	large := Phase{BaselineNS: 1e6, MemoryBound: true, WorkingSetBytes: 1 << 30, PageTouches: 100000}
	sSmall, sLarge := m.Slowdown(small), m.Slowdown(large)
	// Under-EPC memory-bound phases still pay the integrity tree (the
	// paper measures 5.75× on the EPC-resident analytics set).
	if sSmall < 3 || sSmall > 8 {
		t.Errorf("CFL under-EPC slowdown %.2f, want the integrity-tree band 3–8×", sSmall)
	}
	// Paper: "6x-300x slowdown for the CFL SGX enclave" on >EPC sets.
	if sLarge < 6 {
		t.Errorf("CFL over-EPC slowdown %.2f, want ≥6 (paper: 6–300×)", sLarge)
	}
	if sLarge <= sSmall {
		t.Error("paging should dominate beyond the EPC")
	}
}

func TestCFLFaultFractionScalesWithWorkingSet(t *testing.T) {
	m := CoffeeLake()
	mk := func(ws uint64) float64 {
		return m.TimeNS(Phase{BaselineNS: 1e6, MemoryBound: true, WorkingSetBytes: ws, PageTouches: 100000})
	}
	t1 := mk(256 << 20)
	t2 := mk(8 << 30)
	if t2 <= t1 {
		t.Error("larger working set should fault more")
	}
}

func TestPhasePanicsOnNegativeBaseline(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	IceLake().TimeNS(Phase{BaselineNS: -1})
}

func TestSlowdownPanicsOnZeroBaseline(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	IceLake().Slowdown(Phase{BaselineNS: 0})
}

func TestModelNames(t *testing.T) {
	if CoffeeLake().Name != "SGX-CFL" || IceLake().Name != "SGX-ICL" {
		t.Error("model names wrong")
	}
}

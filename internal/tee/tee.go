// Package tee models the trusted-execution baselines of the paper's
// whole-system evaluation (§VI-B, Table III): the CPU that runs the MLP
// portion of DLRM inside an enclave, and the two measured Intel SGX
// generations — CoffeeLake (small EPC protected by an integrity tree,
// collapsing under large working sets through EPC paging) and IceLake
// (large EPC, memory encryption without an integrity tree, a modest
// constant-factor slowdown).
//
// The paper measured real machines; this package is the documented
// analytic substitute (DESIGN.md §2): two parameters per SGX generation
// reproduce the measured shape — CFL's 6–300× collapse once the working
// set exceeds the EPC, and ICL's 1.8–2.6× memory-bound slowdown with ~5%
// cost on cache-resident phases.
package tee

import "fmt"

// CPU is the processor model for the compute-bound (MLP) portion.
type CPU struct {
	// GFLOPS is the effective dense-MLP throughput. The default is
	// calibrated so the SLS share of RMC1-small's end-to-end time matches
	// the paper's breakdown (DESIGN.md §6).
	GFLOPS float64
}

// DefaultCPU returns the calibrated CPU model.
func DefaultCPU() CPU { return CPU{GFLOPS: 51.2} }

// TimeNS returns the wall-clock nanoseconds for the given FLOPs.
func (c CPU) TimeNS(flops float64) float64 {
	if c.GFLOPS <= 0 {
		panic("tee: non-positive CPU throughput")
	}
	return flops / c.GFLOPS
}

// SGXModel is the analytic SGX generation model.
type SGXModel struct {
	Name string
	// EPCBytes is the protected-memory capacity; UsableFrac the fraction
	// available to application data (metadata/integrity tree overheads).
	EPCBytes   uint64
	UsableFrac float64
	// PageSwapNS is the cost of one 4 KiB EPC page swap (encryption,
	// eviction, integrity-tree update). Zero disables paging (ICL-style
	// large EPC).
	PageSwapNS float64
	// MemFactor multiplies memory-bound execution time (per-cacheline
	// decryption and MAC overheads).
	MemFactor float64
	// ComputeFactor multiplies cache-resident execution time.
	ComputeFactor float64
}

// CoffeeLake returns the SGX-CFL model: Xeon E-2288G, 168 MB EPC guarded
// by an integrity tree; page swaps are expensive and the usable EPC is
// small relative to multi-GB embedding tables.
func CoffeeLake() SGXModel {
	return SGXModel{
		Name:       "SGX-CFL",
		EPCBytes:   168 << 20,
		UsableFrac: 0.55, // integrity tree + metadata + code/heap
		PageSwapNS: 3000, // ~3 µs per 4 KiB swap (calibrated, DESIGN.md §6)
		// Integrity-tree walks on every cache miss make even EPC-resident
		// memory-bound phases several times slower (the paper measures
		// 5.75× on the 40 MB analytics set that fits the EPC).
		MemFactor:     5.5,
		ComputeFactor: 1.05,
	}
}

// IceLake returns the SGX-ICL model: Xeon Platinum 8370C, 96 GB EPC, no
// integrity tree ("no int. tree" in Table III) — no paging for these
// workloads, but every memory access pays the inline encryption engine.
func IceLake() SGXModel {
	return SGXModel{
		Name:          "SGX-ICL",
		EPCBytes:      96 << 30,
		UsableFrac:    0.95,
		PageSwapNS:    0,
		MemFactor:     2.0,
		ComputeFactor: 1.05,
	}
}

// Phase describes one portion of a workload's execution.
type Phase struct {
	// BaselineNS is the phase's unprotected execution time.
	BaselineNS float64
	// MemoryBound selects MemFactor (true) or ComputeFactor (false).
	MemoryBound bool
	// WorkingSetBytes is the data footprint the phase touches repeatedly.
	WorkingSetBytes uint64
	// PageTouches is the number of (4 KiB-page-granular) accesses whose
	// pages may miss the EPC; for irregular SLS this is the number of row
	// fetches.
	PageTouches uint64
}

// TimeNS estimates the phase's execution time inside the enclave.
func (m SGXModel) TimeNS(p Phase) float64 {
	if p.BaselineNS < 0 {
		panic(fmt.Sprintf("tee: negative baseline %f", p.BaselineNS))
	}
	f := m.ComputeFactor
	if p.MemoryBound {
		f = m.MemFactor
	}
	t := p.BaselineNS * f
	usable := float64(m.EPCBytes) * m.UsableFrac
	if m.PageSwapNS > 0 && float64(p.WorkingSetBytes) > usable {
		// Random accesses over a working set larger than the EPC: a touch
		// faults with probability 1 − usable/WS.
		faultFrac := 1 - usable/float64(p.WorkingSetBytes)
		t += float64(p.PageTouches) * faultFrac * m.PageSwapNS
	}
	return t
}

// Slowdown returns the model's slowdown for a phase (TimeNS / baseline).
func (m SGXModel) Slowdown(p Phase) float64 {
	if p.BaselineNS <= 0 {
		panic("tee: Slowdown needs a positive baseline")
	}
	return m.TimeNS(p) / p.BaselineNS
}

package remote

import (
	"bufio"
	"encoding/binary"
	"fmt"

	"secndp/internal/core"
)

// Zero-copy framing for the wire protocol's hot paths. Requests and
// responses are marshaled into reusable byte frames with
// binary.AppendUvarint and handed to the transport as one gather write,
// instead of one bufio call (and its per-call bounds checks) per varint.
// The wire format is unchanged — these are the same bytes the write*
// helpers produce; those helpers now delegate here.
//
// Frames are owned by their connection: the client's lives under c.mu, the
// server's under the per-connection serve loop, so neither needs a pool or
// any synchronization, and a steady request stream marshals and parses
// with no per-request allocation once the frames have grown to the
// workload's high-water mark.

// appendGeometry marshals a geometry in writeGeometry's format.
func appendGeometry(b []byte, g core.Geometry) []byte {
	for _, v := range []uint64{
		uint64(g.Layout.Placement), g.Layout.Base, g.Layout.TagBase,
		uint64(g.Layout.NumRows), uint64(g.Layout.RowBytes),
		uint64(g.Params.We), uint64(g.Params.M), uint64(g.Params.ChecksumSubstrings),
	} {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

// appendQuery marshals an (idx, weights) query in writeQuery's format.
func appendQuery(b []byte, idx []int, weights []uint64) []byte {
	b = binary.AppendUvarint(b, uint64(len(idx)))
	for _, i := range idx {
		b = binary.AppendUvarint(b, uint64(i))
	}
	for _, wt := range weights {
		b = binary.AppendUvarint(b, wt)
	}
	return b
}

// appendBatchSub marshals one batch sub-request in writeBatchSub's format
// (independent index and weight counts, so length mismatches survive
// framing).
func appendBatchSub(b []byte, idx []int, weights []uint64) []byte {
	b = binary.AppendUvarint(b, uint64(len(idx)))
	for _, i := range idx {
		b = binary.AppendUvarint(b, uint64(i))
	}
	b = binary.AppendUvarint(b, uint64(len(weights)))
	for _, wt := range weights {
		b = binary.AppendUvarint(b, wt)
	}
	return b
}

// appendBatchRequest marshals an opBatch request body in
// writeBatchRequest's format.
func appendBatchRequest(b []byte, geo core.Geometry, reqs []core.BatchRequest, verify bool) []byte {
	b = appendGeometry(b, geo)
	var flags uint64
	if verify {
		flags |= batchFlagVerify
	}
	b = binary.AppendUvarint(b, flags)
	b = binary.AppendUvarint(b, uint64(len(reqs)))
	for i := range reqs {
		b = appendBatchSub(b, reqs[i].Idx, reqs[i].Weights)
	}
	return b
}

// appendBatchResponse marshals an opBatch reply payload in
// writeBatchResponse's format.
func appendBatchResponse(b []byte, res []core.NDPBatchResult, verify bool) []byte {
	for i := range res {
		if res[i].Err != nil {
			b = append(b, statusErr)
			msg := res[i].Err.Error()
			b = binary.AppendUvarint(b, uint64(len(msg)))
			b = append(b, msg...)
			continue
		}
		b = append(b, statusOK)
		b = binary.AppendUvarint(b, uint64(len(res[i].Sums)))
		for _, v := range res[i].Sums {
			b = binary.AppendUvarint(b, v)
		}
		if verify {
			tb := res[i].Tag.Bytes()
			b = append(b, tb[:]...)
		}
	}
	return b
}

// growInts returns s resized to length n, reallocating only when the
// capacity is short. Contents are undefined.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// growU64s is growInts for uint64 slices.
func growU64s(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// connFrames is one server connection's reusable parse and marshal state:
// the request vectors and the response frame grow to the connection's
// high-water mark once and are reused for every subsequent request. The
// parsed slices are valid until the next read into the same frame; the
// serve loop finishes each request before reading the next, so nothing
// outlives its frame.
type connFrames struct {
	idx     []int
	weights []uint64

	// Batch sub-request backing. subs is resliced per batch; each
	// sub-request's idx/weights reuse the parallel capacity arrays.
	subs   []core.BatchRequest
	subIdx [][]int
	subW   [][]uint64

	out []byte // response marshal frame

	// Pending trace context from an opTraceCtx prefix: consumed by the
	// next operation on this connection (see Server.serveOne).
	traceID      uint64
	parentSpan   uint64
	tracePending bool
}

// readQuery parses a (count, idx..., weights...) query into the frame's
// reusable vectors — the in-place form of the package-level readQuery.
func (f *connFrames) readQuery(r *bufio.Reader) ([]int, []uint64, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, nil, err
	}
	if n > maxVectorLen {
		return nil, nil, fmt.Errorf("remote: query of %d rows exceeds limit", n)
	}
	f.idx = growInts(f.idx, int(n))
	for k := range f.idx {
		v, err := readUvarint(r)
		if err != nil {
			return nil, nil, err
		}
		f.idx[k] = int(v)
	}
	f.weights = growU64s(f.weights, int(n))
	for k := range f.weights {
		if f.weights[k], err = readUvarint(r); err != nil {
			return nil, nil, err
		}
	}
	return f.idx, f.weights, nil
}

// readBatchSub parses one sub-request into slot i's reusable vectors.
func (f *connFrames) readBatchSub(r *bufio.Reader, i int) ([]int, []uint64, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, nil, err
	}
	if n > maxVectorLen {
		return nil, nil, fmt.Errorf("remote: sub-request of %d rows exceeds limit", n)
	}
	f.subIdx[i] = growInts(f.subIdx[i], int(n))
	idx := f.subIdx[i]
	for k := range idx {
		v, err := readUvarint(r)
		if err != nil {
			return nil, nil, err
		}
		idx[k] = int(v)
	}
	m, err := readUvarint(r)
	if err != nil {
		return nil, nil, err
	}
	if m > maxVectorLen {
		return nil, nil, fmt.Errorf("remote: sub-request of %d weights exceeds limit", m)
	}
	f.subW[i] = growU64s(f.subW[i], int(m))
	weights := f.subW[i]
	for k := range weights {
		if weights[k], err = readUvarint(r); err != nil {
			return nil, nil, err
		}
	}
	return idx, weights, nil
}

// readBatchRequest parses an opBatch request body into the frame's
// reusable sub-request vectors — the in-place form of the package-level
// readBatchRequest.
func (f *connFrames) readBatchRequest(r *bufio.Reader) (core.Geometry, []core.BatchRequest, bool, error) {
	geo, err := readGeometry(r)
	if err != nil {
		return core.Geometry{}, nil, false, err
	}
	flags, err := readUvarint(r)
	if err != nil {
		return core.Geometry{}, nil, false, err
	}
	count, err := readUvarint(r)
	if err != nil {
		return core.Geometry{}, nil, false, err
	}
	if count > maxBatchSubs {
		return core.Geometry{}, nil, false, fmt.Errorf("remote: batch of %d sub-requests exceeds limit", count)
	}
	n := int(count)
	if cap(f.subs) < n {
		f.subs = make([]core.BatchRequest, n)
	}
	f.subs = f.subs[:n]
	// subIdx/subW keep their full length permanently; only ever grow.
	for len(f.subIdx) < n {
		f.subIdx = append(f.subIdx, nil)
	}
	for len(f.subW) < n {
		f.subW = append(f.subW, nil)
	}
	for i := 0; i < n; i++ {
		idx, weights, err := f.readBatchSub(r, i)
		if err != nil {
			return core.Geometry{}, nil, false, err
		}
		f.subs[i] = core.BatchRequest{Idx: idx, Weights: weights}
	}
	return geo, f.subs, flags&batchFlagVerify != 0, nil
}

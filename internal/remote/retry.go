package remote

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// ErrRetriesExhausted is returned (wrapped, with the attempt count and the
// last transport error) when every attempt permitted by a RetryPolicy has
// failed. Branch with errors.Is.
var ErrRetriesExhausted = errors.New("remote: retries exhausted")

// RetryPolicy governs re-execution of failed transport calls. Every wire
// operation is idempotent — WeightedSum, TagSum, and Ping are pure reads,
// and the provisioning writes store identical bytes at identical addresses
// — so retrying after an ambiguous failure (a timeout whose request may or
// may not have executed) is always safe.
//
// Server-reported rejections (statusErr) are semantic, not transport,
// failures: a retry would be answered identically, so they are returned
// immediately without consuming attempts. The zero value selects the
// defaults documented per field.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, first call included.
	// <= 0 selects 4.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff between attempts.
	// <= 0 selects 5ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. <= 0 selects 500ms.
	MaxDelay time.Duration
	// Multiplier grows the delay between consecutive attempts.
	// <= 1 selects 2.
	Multiplier float64
	// Jitter is the fraction of each delay randomized away ([0,1]), so a
	// fleet of clients does not hammer a recovering server in lockstep.
	// 0 selects 0.5; negative disables jitter.
	Jitter float64
	// PerAttemptTimeout bounds one attempt. Zero derives the bound from
	// the caller's context instead: the remaining deadline budget split
	// evenly across the attempts not yet used (so one hung attempt cannot
	// eat the whole budget). With no caller deadline either, attempts are
	// unbounded.
	PerAttemptTimeout time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 500 * time.Millisecond
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	} else if p.Jitter < 0 {
		p.Jitter = 0
	} else if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// backoff returns the sleep before the attempt following 1-based attempt.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		d -= d * p.Jitter * rand.Float64()
	}
	return time.Duration(d)
}

// attemptContext derives one attempt's context from the caller's:
// PerAttemptTimeout when set, else an even split of the remaining deadline
// budget over the remaining attempts, else the caller's context unchanged.
func (p RetryPolicy) attemptContext(ctx context.Context, attempt int) (context.Context, context.CancelFunc) {
	if p.PerAttemptTimeout > 0 {
		return context.WithTimeout(ctx, p.PerAttemptTimeout)
	}
	if dl, ok := ctx.Deadline(); ok {
		left := p.MaxAttempts - attempt + 1
		if left < 1 {
			left = 1
		}
		if slice := time.Until(dl) / time.Duration(left); slice > 0 {
			return context.WithTimeout(ctx, slice)
		}
	}
	return context.WithCancel(ctx)
}

// sleepCtx sleeps for d unless the context ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

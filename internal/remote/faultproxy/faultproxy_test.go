package faultproxy

import (
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes every byte back.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr().String()
}

func startProxy(t *testing.T, target string, sched Schedule) (*Proxy, string) {
	t.Helper()
	p := New(target, sched)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, addr
}

// exchange writes msg through the proxy and reads len(msg) echoed bytes
// back, returning whatever arrived and the terminal read error, if any.
func exchange(t *testing.T, addr string, msg []byte) ([]byte, error) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write(msg); err != nil {
		return nil, err
	}
	got := make([]byte, len(msg))
	n, err := io.ReadFull(c, got)
	return got[:n], err
}

func TestProxyPassThrough(t *testing.T) {
	_, addr := startProxy(t, echoServer(t), nil)
	msg := []byte("secndp wire bytes")
	got, err := exchange(t, addr, msg)
	if err != nil {
		t.Fatalf("clean proxy broke the stream: %v", err)
	}
	if string(got) != string(msg) {
		t.Fatalf("clean proxy altered bytes: %q", got)
	}
}

func TestProxyCorruptsPrescribedByte(t *testing.T) {
	_, addr := startProxy(t, echoServer(t),
		Script{{CorruptAt: 3, CorruptMask: 0x40}})
	msg := []byte{0x10, 0x20, 0x30, 0x40}
	got, err := exchange(t, addr, msg)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x10, 0x20, 0x30 ^ 0x40, 0x40}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestProxyTruncates(t *testing.T) {
	_, addr := startProxy(t, echoServer(t), Script{{TruncateAfter: 5}})
	got, err := exchange(t, addr, []byte("0123456789"))
	if err == nil {
		t.Fatal("truncated stream delivered all bytes")
	}
	if len(got) != 5 {
		t.Fatalf("got %d bytes past a 5-byte truncation", len(got))
	}
	if string(got) != "01234" {
		t.Fatalf("pre-truncation bytes altered: %q", got)
	}
}

func TestProxyResets(t *testing.T) {
	_, addr := startProxy(t, echoServer(t), Script{{ResetAfter: 2}})
	got, err := exchange(t, addr, []byte("abcdef"))
	if err == nil {
		t.Fatal("reset stream delivered all bytes")
	}
	if len(got) > 2 {
		t.Fatalf("got %d bytes past a 2-byte reset", len(got))
	}
}

func TestProxyDropsOnAccept(t *testing.T) {
	_, addr := startProxy(t, echoServer(t), Script{{DropOnAccept: true}})
	if _, err := exchange(t, addr, []byte("hello")); err == nil {
		t.Fatal("dropped connection carried traffic")
	}
	// The script is exhausted: the next connection passes clean.
	if _, err := exchange(t, addr, []byte("hello")); err != nil {
		t.Fatalf("connection after the script failed: %v", err)
	}
}

func TestProxyDelays(t *testing.T) {
	_, addr := startProxy(t, echoServer(t), Script{{Delay: 150 * time.Millisecond}})
	start := time.Now()
	if _, err := exchange(t, addr, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("delayed response arrived in %v", elapsed)
	}
}

func TestProxySetScheduleResetsNumbering(t *testing.T) {
	p, addr := startProxy(t, echoServer(t), nil)
	if _, err := exchange(t, addr, []byte("warmup")); err != nil {
		t.Fatal(err)
	}
	// Arm a script: numbering restarts, so the NEXT connection (not some
	// later index) hits plan 0.
	p.SetSchedule(Script{{DropOnAccept: true}})
	if p.Conns() != 0 {
		t.Fatalf("Conns() = %d after SetSchedule, want 0", p.Conns())
	}
	if _, err := exchange(t, addr, []byte("x")); err == nil {
		t.Fatal("armed plan 0 did not fire on the first post-arm connection")
	}
}

func TestProxyBreakConnsSeversLiveStreams(t *testing.T) {
	p, addr := startProxy(t, echoServer(t), nil)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write([]byte("ab")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	p.BreakConns()
	// The live stream is dead: the next read fails rather than hanging.
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read succeeded on a severed connection")
	}
}

func TestChaosDeterministic(t *testing.T) {
	a := Chaos{Seed: 7, PDrop: 0.15, PDelay: 0.15, PCorrupt: 0.15, PTruncate: 0.15, PReset: 0.15}
	b := Chaos{Seed: 7, PDrop: 0.15, PDelay: 0.15, PCorrupt: 0.15, PTruncate: 0.15, PReset: 0.15}
	classes := make(map[string]bool)
	for i := 0; i < 200; i++ {
		pa, pb := a.PlanFor(i), b.PlanFor(i)
		if pa != pb {
			t.Fatalf("conn %d: same seed produced different plans: %+v vs %+v", i, pa, pb)
		}
		switch {
		case pa.DropOnAccept:
			classes["drop"] = true
		case pa.Delay > 0:
			classes["delay"] = true
		case pa.CorruptAt > 0:
			classes["corrupt"] = true
			if pa.CorruptMask == 0 || pa.CorruptMask&0x80 != 0 {
				t.Fatalf("chaos corrupt mask %#x touches the varint framing bit", pa.CorruptMask)
			}
		case pa.TruncateAfter > 0:
			classes["truncate"] = true
		case pa.ResetAfter > 0:
			classes["reset"] = true
		default:
			classes["clean"] = true
		}
	}
	for _, class := range []string{"drop", "delay", "corrupt", "truncate", "reset", "clean"} {
		if !classes[class] {
			t.Errorf("200 chaos plans never produced class %q", class)
		}
	}
	if p := (Chaos{Seed: 8}).PlanFor(0); p != (Plan{}) {
		t.Errorf("zero-probability chaos produced a fault: %+v", p)
	}
}

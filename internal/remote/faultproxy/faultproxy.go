// Package faultproxy is a chaos TCP proxy for fault-injection testing of
// the NDP transport: it sits between the trusted client and the untrusted
// server and drops, delays, truncates, corrupts, or resets connections on
// a deterministic schedule. The fault-tolerance layer (reconnecting pool,
// retry, circuit breaker, TEE fallback) is driven through every failure
// class by ordinary go tests — no root, no tc/iptables.
//
// Faults are prescribed per accepted connection by a Schedule; Script
// plays a fixed list of Plans in accept order (deterministic tests) and
// Chaos derives a random Plan per connection from a fixed seed
// (reproducible soak tests). BreakConns severs every live proxied
// connection mid-stream — a network blip forcing clients to redial.
package faultproxy

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Plan is one connection's fault prescription. The zero value is a clean
// pass-through. Byte offsets refer to the server→client (response) stream
// and are 1-based; 0 disables that fault.
type Plan struct {
	// DropOnAccept closes the client connection immediately, before the
	// upstream dial — a dead or refusing server.
	DropOnAccept bool
	// Delay pauses the response stream once, before the first forwarded
	// byte — a slow or overloaded server.
	Delay time.Duration
	// CorruptAt XORs CorruptMask (default 0x01) into the Nth response
	// byte — in-flight corruption of ciphertext, tags, or framing that the
	// client must never silently accept.
	CorruptAt   int64
	CorruptMask byte
	// TruncateAfter closes the connection cleanly after N response bytes —
	// a mid-frame server crash.
	TruncateAfter int64
	// ResetAfter sends a TCP RST after N response bytes.
	ResetAfter int64
}

// Schedule assigns a Plan to each accepted connection, identified by its
// 0-based accept order.
type Schedule interface {
	PlanFor(conn int) Plan
}

// Script plays fixed plans in accept order; connections beyond the end of
// the script are clean.
type Script []Plan

// PlanFor implements Schedule.
func (s Script) PlanFor(conn int) Plan {
	if conn < len(s) {
		return s[conn]
	}
	return Plan{}
}

// Clean is the all-pass schedule.
type Clean struct{}

// PlanFor implements Schedule.
func (Clean) PlanFor(int) Plan { return Plan{} }

// Chaos derives a random plan per connection from a fixed seed, so a soak
// run is fully reproducible. The probabilities are evaluated cumulatively;
// their sum should be <= 1, with the remainder passing clean.
type Chaos struct {
	Seed                                       int64
	PDrop, PDelay, PCorrupt, PTruncate, PReset float64
	// MaxDelay bounds delay faults. <= 0 selects 20ms.
	MaxDelay time.Duration
	// MaxOffset bounds fault byte offsets. <= 0 selects 512.
	MaxOffset int64
}

// PlanFor implements Schedule.
func (c Chaos) PlanFor(conn int) Plan {
	rng := rand.New(rand.NewSource(c.Seed + int64(conn)*0x9E3779B9))
	maxDelay := c.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 20 * time.Millisecond
	}
	maxOff := c.MaxOffset
	if maxOff <= 0 {
		maxOff = 512
	}
	off := func() int64 { return 1 + rng.Int63n(maxOff) }
	var p Plan
	r := rng.Float64()
	switch {
	case r < c.PDrop:
		p.DropOnAccept = true
	case r < c.PDrop+c.PDelay:
		p.Delay = time.Duration(1 + rng.Int63n(int64(maxDelay)))
	case r < c.PDrop+c.PDelay+c.PCorrupt:
		p.CorruptAt = off()
		p.CorruptMask = byte(1 << rng.Intn(7)) // spare bit 7: varint framing
	case r < c.PDrop+c.PDelay+c.PCorrupt+c.PTruncate:
		p.TruncateAfter = off()
	case r < c.PDrop+c.PDelay+c.PCorrupt+c.PTruncate+c.PReset:
		p.ResetAfter = off()
	}
	return p
}

// Proxy forwards TCP connections to a target address, applying each
// connection's Plan to the response stream.
type Proxy struct {
	target string
	sched  Schedule

	ln net.Listener
	wg sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	n     int
}

// New builds a proxy toward target (a host:port). A nil schedule passes
// everything through clean.
func New(target string, sched Schedule) *Proxy {
	if sched == nil {
		sched = Clean{}
	}
	return &Proxy{target: target, sched: sched, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting on addr (e.g. "127.0.0.1:0") and returns the
// bound address clients should dial.
func (p *Proxy) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	p.ln = ln
	p.wg.Add(1)
	go p.acceptLoop()
	return ln.Addr().String(), nil
}

// SetSchedule swaps the fault schedule and restarts the connection
// numbering, so a test can provision cleanly and then arm a fault script
// whose indices start at the next accepted connection.
func (p *Proxy) SetSchedule(sched Schedule) {
	if sched == nil {
		sched = Clean{}
	}
	p.mu.Lock()
	p.sched = sched
	p.n = 0
	p.mu.Unlock()
}

// Conns reports how many connections have been accepted since the last
// SetSchedule.
func (p *Proxy) Conns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// BreakConns severs every live proxied connection mid-stream — a network
// blip. Clients redial through whatever schedule is armed.
func (p *Proxy) BreakConns() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := range p.conns {
		c.Close()
	}
}

// Close stops the listener and severs all live connections.
func (p *Proxy) Close() error {
	var err error
	if p.ln != nil {
		err = p.ln.Close()
	}
	p.BreakConns()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		plan := p.sched.PlanFor(p.n)
		p.n++
		p.mu.Unlock()
		p.wg.Add(1)
		go p.handle(conn, plan)
	}
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) handle(client net.Conn, plan Plan) {
	defer p.wg.Done()
	defer client.Close()
	if plan.DropOnAccept {
		return
	}
	server, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	defer server.Close()
	p.track(client)
	p.track(server)
	defer p.untrack(client)
	defer p.untrack(server)

	done := make(chan struct{}, 2)
	go func() { // request stream: forwarded clean
		io.Copy(server, client)
		done <- struct{}{}
	}()
	go func() { // response stream: the plan applies here
		p.copyResponses(client, server, plan)
		done <- struct{}{}
	}()
	<-done
	// Either side finishing (or a fault firing) tears down the pair; close
	// both so the peer copier unblocks, then reap it.
	client.Close()
	server.Close()
	<-done
}

// copyResponses forwards server→client bytes, applying the plan's delay,
// corruption, truncation, or reset at the prescribed offsets.
func (p *Proxy) copyResponses(dst, src net.Conn, plan Plan) {
	if plan.Delay > 0 {
		time.Sleep(plan.Delay)
	}
	var copied int64
	buf := make([]byte, 4096)
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			end := copied + int64(n)
			if plan.CorruptAt > 0 && copied < plan.CorruptAt && plan.CorruptAt <= end {
				mask := plan.CorruptMask
				if mask == 0 {
					mask = 0x01
				}
				chunk[plan.CorruptAt-copied-1] ^= mask
			}
			if plan.ResetAfter > 0 && end >= plan.ResetAfter {
				dst.Write(chunk[:plan.ResetAfter-copied])
				reset(dst)
				return
			}
			if plan.TruncateAfter > 0 && end >= plan.TruncateAfter {
				dst.Write(chunk[:plan.TruncateAfter-copied])
				return
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return
			}
			copied = end
		}
		if rerr != nil {
			return
		}
	}
}

// reset aborts the connection with a TCP RST instead of a FIN.
func reset(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

package remote

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"secndp/internal/core"
	"secndp/internal/memory"
)

// The wire protocol sits on the trust boundary: the server parses bytes from
// untrusted clients, and the client parses bytes from the untrusted server.
// These targets assert the one property both directions must hold under
// arbitrary input — parsers return errors, they never panic — plus
// round-trip consistency for anything that does parse.

func fuzzGeometryBytes(g core.Geometry) []byte {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeGeometry(w, g); err != nil {
		panic(err)
	}
	w.Flush()
	return buf.Bytes()
}

func FuzzReadGeometry(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x80}) // truncated uvarint
	f.Add(fuzzGeometryBytes(core.Geometry{
		Layout: memory.Layout{Placement: memory.TagSep, Base: 0x10000,
			TagBase: 0x800000, NumRows: 16, RowBytes: 128},
		Params: core.Params{We: 32, M: 32},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := readGeometry(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		// Whatever parsed must survive a write/read round trip unchanged.
		g2, err := readGeometry(bufio.NewReader(bytes.NewReader(fuzzGeometryBytes(g))))
		if err != nil {
			t.Fatalf("re-read of serialized geometry failed: %v", err)
		}
		if g2 != g {
			t.Fatalf("geometry round trip: %+v != %+v", g2, g)
		}
	})
}

func FuzzReadQuery(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x02, 0x01, 0x02, 0x03})                                     // truncated weights
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}) // n > maxVectorLen
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	writeQuery(w, []int{1, 5, 9}, []uint64{2, 3, 4})
	w.Flush()
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		idx, weights, err := readQuery(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if len(idx) != len(weights) {
			t.Fatalf("parsed query with %d indices but %d weights", len(idx), len(weights))
		}
		if len(idx) > maxVectorLen {
			t.Fatalf("parsed query of %d rows exceeds the advertised limit", len(idx))
		}
		var rt bytes.Buffer
		rw := bufio.NewWriter(&rt)
		if err := writeQuery(rw, idx, weights); err != nil {
			t.Fatal(err)
		}
		rw.Flush()
		idx2, weights2, err := readQuery(bufio.NewReader(bytes.NewReader(rt.Bytes())))
		if err != nil {
			t.Fatalf("re-read of serialized query failed: %v", err)
		}
		for k := range idx {
			if idx2[k] != idx[k] || weights2[k] != weights[k] {
				t.Fatal("query round trip mismatch")
			}
		}
	})
}

// FuzzClientResponse feeds arbitrary bytes to the client-side response
// parsers — the path a malicious or fault-corrupted server controls.
func FuzzClientResponse(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{statusOK, 0x02, 0x07, 0x09})
	f.Add([]byte{statusErr, 0x03, 'b', 'a', 'd'})
	f.Add([]byte{0x42}) // corrupt status byte
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		if err := readStatus(r); err != nil {
			return
		}
		// Exercise both response shapes over the remaining bytes.
		readSumResponse(bufio.NewReader(bytes.NewReader(data[1:])))
		readTagResponse(bufio.NewReader(bytes.NewReader(data[1:])))
	})
}

// FuzzServeOne runs the full server request loop over an arbitrary byte
// stream. The server faces untrusted clients directly, so no input may
// panic it or make it allocate unboundedly.
func FuzzServeOne(f *testing.F) {
	f.Add([]byte{opPing})
	f.Add([]byte{opWriteBlob, 0x10, 0x02, 0xAB, 0xCD, opPing})
	f.Add([]byte{0x99}) // unknown op
	var req bytes.Buffer
	w := bufio.NewWriter(&req)
	w.WriteByte(opWeightedSum)
	writeGeometry(w, core.Geometry{
		Layout: memory.Layout{Placement: memory.TagSep, Base: 0x10000,
			TagBase: 0x800000, NumRows: 16, RowBytes: 128},
		Params: core.Params{We: 32, M: 32},
	})
	writeQuery(w, []int{1, 5}, []uint64{2, 3})
	w.Flush()
	f.Add(req.Bytes())
	var breq bytes.Buffer
	bw := bufio.NewWriter(&breq)
	bw.WriteByte(opBatch)
	writeBatchRequest(bw, core.Geometry{
		Layout: memory.Layout{Placement: memory.TagSep, Base: 0x10000,
			TagBase: 0x800000, NumRows: 16, RowBytes: 128},
		Params: core.Params{We: 32, M: 32},
	}, []core.BatchRequest{{Idx: []int{1, 5}, Weights: []uint64{2, 3}}, {}}, true)
	bw.Flush()
	f.Add(breq.Bytes())
	f.Add([]byte{opCaps, opPing})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewServer(memory.NewSpace())
		r := bufio.NewReader(bytes.NewReader(data))
		out := bufio.NewWriter(io.Discard)
		fr := &connFrames{}
		for i := 0; i < 64; i++ { // bound work per input
			if err := s.serveOne(r, out, fr); err != nil {
				break
			}
		}
	})
}

// fuzzBatchRequestBytes serializes an opBatch request body for seeding.
func fuzzBatchRequestBytes(geo core.Geometry, reqs []core.BatchRequest, verify bool) []byte {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeBatchRequest(w, geo, reqs, verify); err != nil {
		panic(err)
	}
	w.Flush()
	return buf.Bytes()
}

// FuzzReadBatchRequest hammers the server-side batch parser — the largest
// frame an untrusted client controls. No input may panic it or make it
// allocate past the advertised limits; whatever parses must survive a
// write/read round trip.
func FuzzReadBatchRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x80})                                                       // truncated geometry
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}) // huge uvarint
	geo := core.Geometry{
		Layout: memory.Layout{Placement: memory.TagSep, Base: 0x10000,
			TagBase: 0x800000, NumRows: 16, RowBytes: 128},
		Params: core.Params{We: 32, M: 32},
	}
	f.Add(fuzzBatchRequestBytes(geo, []core.BatchRequest{
		{Idx: []int{1, 5}, Weights: []uint64{2, 3}},
		{}, // empty sub-request
		{Idx: []int{9}, Weights: []uint64{4, 7}}, // mismatched lengths must frame
	}, true))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, reqs, verify, err := readBatchRequest(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if len(reqs) > maxBatchSubs {
			t.Fatalf("parsed batch of %d sub-requests exceeds the advertised limit", len(reqs))
		}
		for i := range reqs {
			if len(reqs[i].Idx) > maxVectorLen || len(reqs[i].Weights) > maxVectorLen {
				t.Fatalf("sub-request %d exceeds the per-vector limit", i)
			}
		}
		g2, reqs2, verify2, err := readBatchRequest(
			bufio.NewReader(bytes.NewReader(fuzzBatchRequestBytes(g, reqs, verify))))
		if err != nil {
			t.Fatalf("re-read of serialized batch request failed: %v", err)
		}
		if g2 != g || verify2 != verify || len(reqs2) != len(reqs) {
			t.Fatal("batch request header round trip mismatch")
		}
		for i := range reqs {
			if len(reqs2[i].Idx) != len(reqs[i].Idx) || len(reqs2[i].Weights) != len(reqs[i].Weights) {
				t.Fatalf("sub-request %d shape round trip mismatch", i)
			}
			for k := range reqs[i].Idx {
				if reqs2[i].Idx[k] != reqs[i].Idx[k] {
					t.Fatal("sub-request index round trip mismatch")
				}
			}
			for k := range reqs[i].Weights {
				if reqs2[i].Weights[k] != reqs[i].Weights[k] {
					t.Fatal("sub-request weight round trip mismatch")
				}
			}
		}
	})
}

// FuzzReadBatchResponse feeds arbitrary bytes to the client-side batch
// reply parser — the path a malicious or fault-corrupted server controls.
func FuzzReadBatchResponse(f *testing.F) {
	f.Add(uint16(0), false, []byte{})
	f.Add(uint16(1), false, []byte{statusOK, 0x02, 0x07, 0x09})
	f.Add(uint16(1), false, []byte{statusErr, 0x03, 'b', 'a', 'd'})
	f.Add(uint16(2), true, []byte{statusOK, 0x01, 0x05})
	f.Add(uint16(1), false, []byte{0x42}) // corrupt sub-status byte
	{
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		writeBatchResponse(w, []core.NDPBatchResult{
			{Sums: []uint64{7, 9, 1 << 40}},
			{Err: io.ErrUnexpectedEOF},
		}, true)
		w.Flush()
		f.Add(uint16(2), true, buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, count uint16, verify bool, data []byte) {
		n := int(count) % (maxBatchSubs + 2) // cover the in-range and over-limit shapes
		res, err := readBatchResponse(bufio.NewReader(bytes.NewReader(data)), n, verify)
		if err != nil {
			return
		}
		if len(res) != n {
			t.Fatalf("parsed %d sub-results for a batch of %d", len(res), n)
		}
		// Whatever parsed must re-serialize and re-parse to the same shape.
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := writeBatchResponse(w, res, verify); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		res2, err := readBatchResponse(bufio.NewReader(bytes.NewReader(buf.Bytes())), n, verify)
		if err != nil {
			t.Fatalf("re-read of serialized batch response failed: %v", err)
		}
		for i := range res {
			if (res[i].Err == nil) != (res2[i].Err == nil) {
				t.Fatalf("sub-result %d error-ness round trip mismatch", i)
			}
			if res[i].Err != nil {
				continue
			}
			if len(res2[i].Sums) != len(res[i].Sums) {
				t.Fatalf("sub-result %d sums length round trip mismatch", i)
			}
			for k := range res[i].Sums {
				if res2[i].Sums[k] != res[i].Sums[k] {
					t.Fatal("sub-result sums round trip mismatch")
				}
			}
			if verify && !res2[i].Tag.Equal(res[i].Tag) {
				t.Fatal("sub-result tag round trip mismatch")
			}
		}
	})
}

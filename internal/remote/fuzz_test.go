package remote

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"secndp/internal/core"
	"secndp/internal/memory"
)

// The wire protocol sits on the trust boundary: the server parses bytes from
// untrusted clients, and the client parses bytes from the untrusted server.
// These targets assert the one property both directions must hold under
// arbitrary input — parsers return errors, they never panic — plus
// round-trip consistency for anything that does parse.

func fuzzGeometryBytes(g core.Geometry) []byte {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeGeometry(w, g); err != nil {
		panic(err)
	}
	w.Flush()
	return buf.Bytes()
}

func FuzzReadGeometry(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x80}) // truncated uvarint
	f.Add(fuzzGeometryBytes(core.Geometry{
		Layout: memory.Layout{Placement: memory.TagSep, Base: 0x10000,
			TagBase: 0x800000, NumRows: 16, RowBytes: 128},
		Params: core.Params{We: 32, M: 32},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := readGeometry(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		// Whatever parsed must survive a write/read round trip unchanged.
		g2, err := readGeometry(bufio.NewReader(bytes.NewReader(fuzzGeometryBytes(g))))
		if err != nil {
			t.Fatalf("re-read of serialized geometry failed: %v", err)
		}
		if g2 != g {
			t.Fatalf("geometry round trip: %+v != %+v", g2, g)
		}
	})
}

func FuzzReadQuery(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x02, 0x01, 0x02, 0x03})                                     // truncated weights
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}) // n > maxVectorLen
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	writeQuery(w, []int{1, 5, 9}, []uint64{2, 3, 4})
	w.Flush()
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		idx, weights, err := readQuery(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if len(idx) != len(weights) {
			t.Fatalf("parsed query with %d indices but %d weights", len(idx), len(weights))
		}
		if len(idx) > maxVectorLen {
			t.Fatalf("parsed query of %d rows exceeds the advertised limit", len(idx))
		}
		var rt bytes.Buffer
		rw := bufio.NewWriter(&rt)
		if err := writeQuery(rw, idx, weights); err != nil {
			t.Fatal(err)
		}
		rw.Flush()
		idx2, weights2, err := readQuery(bufio.NewReader(bytes.NewReader(rt.Bytes())))
		if err != nil {
			t.Fatalf("re-read of serialized query failed: %v", err)
		}
		for k := range idx {
			if idx2[k] != idx[k] || weights2[k] != weights[k] {
				t.Fatal("query round trip mismatch")
			}
		}
	})
}

// FuzzClientResponse feeds arbitrary bytes to the client-side response
// parsers — the path a malicious or fault-corrupted server controls.
func FuzzClientResponse(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{statusOK, 0x02, 0x07, 0x09})
	f.Add([]byte{statusErr, 0x03, 'b', 'a', 'd'})
	f.Add([]byte{0x42}) // corrupt status byte
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		if err := readStatus(r); err != nil {
			return
		}
		// Exercise both response shapes over the remaining bytes.
		readSumResponse(bufio.NewReader(bytes.NewReader(data[1:])))
		readTagResponse(bufio.NewReader(bytes.NewReader(data[1:])))
	})
}

// FuzzServeOne runs the full server request loop over an arbitrary byte
// stream. The server faces untrusted clients directly, so no input may
// panic it or make it allocate unboundedly.
func FuzzServeOne(f *testing.F) {
	f.Add([]byte{opPing})
	f.Add([]byte{opWriteBlob, 0x10, 0x02, 0xAB, 0xCD, opPing})
	f.Add([]byte{0x99}) // unknown op
	var req bytes.Buffer
	w := bufio.NewWriter(&req)
	w.WriteByte(opWeightedSum)
	writeGeometry(w, core.Geometry{
		Layout: memory.Layout{Placement: memory.TagSep, Base: 0x10000,
			TagBase: 0x800000, NumRows: 16, RowBytes: 128},
		Params: core.Params{We: 32, M: 32},
	})
	writeQuery(w, []int{1, 5}, []uint64{2, 3})
	w.Flush()
	f.Add(req.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewServer(memory.NewSpace())
		r := bufio.NewReader(bytes.NewReader(data))
		out := bufio.NewWriter(io.Discard)
		for i := 0; i < 64; i++ { // bound work per input
			if err := s.serveOne(r, out); err != nil {
				break
			}
		}
	})
}

package remote

import (
	"bufio"
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"testing"

	"secndp/internal/core"
	"secndp/internal/memory"
	"secndp/internal/telemetry"
)

// The zero-copy frames must produce byte-identical wire traffic to the
// original per-varint writers, and the reusable server-side parser must
// decode exactly what the allocating one does — including across reuse,
// where a previous (larger) request's leftovers sit in the frame.

func frameGeo(n int) core.Geometry {
	return core.Geometry{
		Layout: memory.Layout{Placement: memory.TagSep, Base: 0x10000,
			TagBase: 0x800000, NumRows: n, RowBytes: 128},
		Params: core.Params{We: 32, M: 32},
	}
}

func randFrameQuery(rng *rand.Rand, rows int) ([]int, []uint64) {
	n := 1 + rng.Intn(64)
	idx := make([]int, n)
	w := make([]uint64, n)
	for k := range idx {
		idx[k] = rng.Intn(rows)
		w[k] = rng.Uint64()
	}
	return idx, w
}

// TestConnFramesReadQueryMatchesAllocating replays a stream of queries of
// varying sizes through one reused connFrames and checks each decode
// against the allocating parser on the same bytes.
func TestConnFramesReadQueryMatchesAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	fr := &connFrames{}
	for trial := 0; trial < 50; trial++ {
		idx, w := randFrameQuery(rng, 1<<20)
		wire := appendQuery(nil, idx, w)

		gi, gw, err := fr.readQuery(bufio.NewReader(bytes.NewReader(wire)))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ri, rw, err := readQuery(bufio.NewReader(bytes.NewReader(wire)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gi, ri) || !reflect.DeepEqual(gw, rw) {
			t.Fatalf("trial %d: frame decode diverged from allocating decode", trial)
		}
	}
}

// TestConnFramesReadBatchMatchesAllocating does the same for whole batch
// frames, with sub-request counts shrinking and growing across reuse.
func TestConnFramesReadBatchMatchesAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	fr := &connFrames{}
	geo := frameGeo(1 << 16)
	for trial := 0; trial < 30; trial++ {
		reqs := make([]core.BatchRequest, 1+rng.Intn(8))
		for i := range reqs {
			reqs[i].Idx, reqs[i].Weights = randFrameQuery(rng, 1<<16)
		}
		verify := rng.Intn(2) == 0
		wire := appendBatchRequest(nil, geo, reqs, verify)

		g1, r1, v1, err := fr.readBatchRequest(bufio.NewReader(bytes.NewReader(wire)))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		g2, r2, v2, err := readBatchRequest(bufio.NewReader(bytes.NewReader(wire)))
		if err != nil {
			t.Fatal(err)
		}
		if g1 != g2 || v1 != v2 || !reflect.DeepEqual(r1, r2) {
			t.Fatalf("trial %d: frame decode diverged from allocating decode", trial)
		}
		if !reflect.DeepEqual(r1, reqs) {
			t.Fatalf("trial %d: decode does not round-trip the input", trial)
		}
	}
}

// TestAppendWritersMatchBufioWriters pins the gather marshalers to the
// bufio writers bit for bit (the writers now delegate, so this guards the
// delegation as well as the formats).
func TestAppendWritersMatchBufioWriters(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	geo := frameGeo(512)
	idx, w := randFrameQuery(rng, 512)

	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeGeometry(bw, geo); err != nil {
		t.Fatal(err)
	}
	if err := writeQuery(bw, idx, w); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	got := appendQuery(appendGeometry(nil, geo), idx, w)
	if !bytes.Equal(got, buf.Bytes()) {
		t.Error("gathered query frame differs from bufio-written bytes")
	}

	reqs := []core.BatchRequest{{Idx: idx, Weights: w}, {Idx: []int{1}, Weights: []uint64{2, 3}}}
	buf.Reset()
	bw = bufio.NewWriter(&buf)
	if err := writeBatchRequest(bw, geo, reqs, true); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	got = appendBatchRequest(nil, geo, reqs, true)
	if !bytes.Equal(got, buf.Bytes()) {
		t.Error("gathered batch frame differs from bufio-written bytes")
	}

	// The trace-context prefix must be the identity on these goldens
	// whenever either side does not opt in: an untraced context on a
	// trace-capable connection, and a traced context against a server
	// that never advertised capTrace.
	legacyFrame := appendQuery(appendGeometry([]byte{opWeightedSum}, geo), idx, w)
	untraced := &Client{capsKnown: true, caps: serverCaps}
	reg := telemetry.NewRegistry()
	traced, _ := reg.StartSpan(context.Background(), "golden")
	for name, tc := range map[string]struct {
		c   *Client
		ctx context.Context
	}{
		"untraced ctx":  {untraced, context.Background()},
		"legacy server": {&Client{capsKnown: true, caps: capBatch}, traced},
	} {
		framed := appendQuery(appendGeometry(append(tc.c.traceFrameLocked(tc.ctx), opWeightedSum), geo), idx, w)
		if !bytes.Equal(framed, legacyFrame) {
			t.Errorf("%s: traced framing path altered the golden frame bytes", name)
		}
	}
}

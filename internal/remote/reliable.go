package remote

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"secndp/internal/core"
	"secndp/internal/field"
	"secndp/internal/memory"
	"secndp/internal/telemetry"
)

// ReliableClient layers fault tolerance over the wire protocol: a
// reconnecting Pool (a connection poisoned by a transport failure is
// replaced by a health-checked redial), a RetryPolicy with exponential
// backoff and jitter for the idempotent operations, and a circuit Breaker
// that stops hammering a dead server and probes it back to life.
//
// It satisfies Transport (and so core.NDP / core.ContextNDP), making it a
// drop-in replacement for a single *Client everywhere the trusted engine
// talks to an NDP. Errors surface typed: ErrRetriesExhausted when every
// attempt failed, ErrCircuitOpen when the breaker is rejecting calls, and
// server-reported semantic rejections verbatim (those are never retried —
// the server would answer identically). Safe for concurrent use.
type ReliableClient struct {
	pool    *Pool
	retry   RetryPolicy
	breaker *Breaker

	attempts atomic.Uint64
	retries  atomic.Uint64

	// Batch capability across the pool: 0 unprobed, 1 supported, 2 not.
	// Connections share one server, so one definitive probe answers for
	// all of them.
	batchCap atomic.Int32

	// Registry mirrors of the fault-tolerance counters: atomic so
	// Instrument may land while operations are in flight (a nil load is a
	// no-op). instrumentOnce makes Instrument idempotent so the facade may
	// auto-instrument on every Provision.
	instrumentOnce sync.Once
	mAttempts      atomic.Pointer[telemetry.Counter]
	mRetries       atomic.Pointer[telemetry.Counter]
}

// Instrument mirrors the client's attempt/retry counters, the pool's dial
// counter, and the breaker's open count and state gauge onto a telemetry
// registry, using the shared secndp_transport_*/secndp_breaker_* series.
// Idempotent; safe for concurrent use; a nil registry is a no-op.
func (rc *ReliableClient) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	rc.instrumentOnce.Do(func() {
		rc.mAttempts.Store(reg.Counter("secndp_transport_attempts_total",
			"Wire attempts by the fault-tolerant NDP transport, first tries included."))
		rc.mRetries.Store(reg.Counter("secndp_transport_retries_total",
			"Wire attempts beyond the first of each transport operation."))
		rc.pool.Instrument(reg.Counter("secndp_transport_dials_total",
			"Connection (re)dials by the reconnecting NDP pool."))
		rc.breaker.Instrument(
			reg.Counter("secndp_breaker_opens_total",
				"Circuit-breaker transitions to the open state."),
			reg.Gauge("secndp_breaker_state",
				"Circuit-breaker state: 0 closed, 1 half-open, 2 open."))
	})
}

// ReliableConfig bundles the fault-tolerance knobs. The zero value selects
// every documented default.
type ReliableConfig struct {
	Pool    PoolConfig
	Retry   RetryPolicy
	Breaker BreakerConfig
}

var (
	_ Transport       = (*ReliableClient)(nil)
	_ core.NDP        = (*ReliableClient)(nil)
	_ core.ContextNDP = (*ReliableClient)(nil)
	_ core.BatchNDP   = (*ReliableClient)(nil)
)

// NewReliable builds the fault-tolerant client without touching the
// network; the first operation dials lazily (useful when the server comes
// up later than the client).
func NewReliable(addr string, cfg ReliableConfig) *ReliableClient {
	return &ReliableClient{
		pool:    NewPool(addr, cfg.Pool),
		retry:   cfg.Retry.withDefaults(),
		breaker: NewBreaker(cfg.Breaker),
	}
}

// DialReliable builds the fault-tolerant client and verifies the server is
// reachable with one health-checked connection (kept warm in the pool).
func DialReliable(ctx context.Context, addr string, cfg ReliableConfig) (*ReliableClient, error) {
	rc := NewReliable(addr, cfg)
	c, err := rc.pool.Get(ctx)
	if err != nil {
		rc.Close()
		return nil, err
	}
	rc.pool.Put(c)
	return rc, nil
}

// Close releases the pooled connections.
func (rc *ReliableClient) Close() error { return rc.pool.Close() }

// attempt runs fn over one pooled connection and settles the breaker:
// server-reported rejections keep the connection (the stream is in sync)
// and count as breaker successes; transport failures poison and close it.
func (rc *ReliableClient) attempt(ctx context.Context, fn func(context.Context, *Client) error) error {
	c, err := rc.pool.Get(ctx)
	if err != nil {
		rc.breaker.Failure()
		return err
	}
	err = fn(ctx, c)
	if err == nil {
		rc.breaker.Success()
		rc.pool.Put(c)
		return nil
	}
	var se *serverError
	if errors.As(err, &se) {
		rc.breaker.Success()
		rc.pool.Put(c)
		return err
	}
	rc.breaker.Failure()
	c.Close()
	return err
}

// do is the retry loop shared by every operation: per-attempt deadlines
// derived from the caller's context, exponential backoff with jitter
// between attempts, the circuit breaker consulted before each one.
func (rc *ReliableClient) do(ctx context.Context, op string, fn func(context.Context, *Client) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var last error
	for att := 1; att <= rc.retry.MaxAttempts; att++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := rc.breaker.Allow(); err != nil {
			telemetry.SpanFromContext(ctx).Eventf(telemetry.EventBreakerOpen,
				"%s rejected by open circuit on attempt %d", op, att)
			if last != nil {
				return fmt.Errorf("remote: %s: %w after %d attempts: %w", op, ErrCircuitOpen, att-1, last)
			}
			return fmt.Errorf("remote: %s: %w", op, err)
		}
		rc.attempts.Add(1)
		rc.mAttempts.Load().Inc()
		if att > 1 {
			rc.retries.Add(1)
			rc.mRetries.Load().Inc()
		}
		actx, cancel := rc.retry.attemptContext(ctx, att)
		err := rc.attempt(actx, fn)
		cancel()
		if err == nil {
			return nil
		}
		var se *serverError
		if errors.As(err, &se) {
			return err // semantic rejection: retrying is pointless
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr // the caller's budget ran out, not the attempt's
		}
		last = err
		if errors.Is(err, ErrPoolClosed) {
			break
		}
		if att < rc.retry.MaxAttempts {
			if serr := sleepCtx(ctx, rc.retry.backoff(att)); serr != nil {
				return serr
			}
		}
	}
	return fmt.Errorf("remote: %s: %w after %d attempts: %w", op, ErrRetriesExhausted, rc.retry.MaxAttempts, last)
}

// WeightedSumContext implements core.ContextNDP with retry, reconnect, and
// breaker protection. Safe to retry: a pure read over ciphertext.
func (rc *ReliableClient) WeightedSumContext(ctx context.Context, geo core.Geometry, idx []int, weights []uint64) ([]uint64, error) {
	var res []uint64
	err := rc.do(ctx, "WeightedSum", func(ctx context.Context, c *Client) error {
		var err error
		res, err = c.WeightedSumContext(ctx, geo, idx, weights)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// TagSumContext implements core.ContextNDP with retry, reconnect, and
// breaker protection. Safe to retry: a pure read over encrypted tags.
func (rc *ReliableClient) TagSumContext(ctx context.Context, geo core.Geometry, idx []int, weights []uint64) (field.Elem, error) {
	var tag field.Elem
	err := rc.do(ctx, "TagSum", func(ctx context.Context, c *Client) error {
		var err error
		tag, err = c.TagSumContext(ctx, geo, idx, weights)
		return err
	})
	if err != nil {
		return field.Zero, err
	}
	return tag, nil
}

// WriteBlobContext provisions ciphertext with retry. Idempotent: a replay
// stores identical bytes at identical addresses.
func (rc *ReliableClient) WriteBlobContext(ctx context.Context, addr uint64, data []byte) error {
	return rc.do(ctx, "WriteBlob", func(ctx context.Context, c *Client) error {
		return c.WriteBlobContext(ctx, addr, data)
	})
}

// WriteECCContext provisions a side-band tag with retry (idempotent, as
// WriteBlobContext).
func (rc *ReliableClient) WriteECCContext(ctx context.Context, dataAddr uint64, tag []byte) error {
	if len(tag) != memory.TagBytes {
		// Validate before the retry loop: a malformed argument is permanent.
		return fmt.Errorf("remote: tag must be %d bytes", memory.TagBytes)
	}
	return rc.do(ctx, "WriteECC", func(ctx context.Context, c *Client) error {
		return c.WriteECCContext(ctx, dataAddr, tag)
	})
}

// WeightedTagSumBatch implements core.BatchNDP with retry, reconnect, and
// breaker protection. Safe to retry: a pure read over ciphertext and tags.
func (rc *ReliableClient) WeightedTagSumBatch(ctx context.Context, geo core.Geometry, reqs []core.BatchRequest, verify bool) ([]core.NDPBatchResult, error) {
	var res []core.NDPBatchResult
	err := rc.do(ctx, "Batch", func(ctx context.Context, c *Client) error {
		var err error
		res, err = c.WeightedTagSumBatch(ctx, geo, reqs, verify)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// SupportsBatch implements core.BatchNDP. The first call probes the server
// over a pooled connection and the definitive answer is cached for the
// client's lifetime (all connections in the pool reach the same server);
// probe transport failures leave it unprobed and report false — the next
// batch attempt will re-probe.
func (rc *ReliableClient) SupportsBatch(ctx context.Context) bool {
	switch rc.batchCap.Load() {
	case 1:
		return true
	case 2:
		return false
	}
	var caps uint64
	err := rc.do(ctx, "Caps", func(ctx context.Context, c *Client) error {
		var err error
		caps, err = c.CapabilitiesContext(ctx)
		return err
	})
	if err != nil {
		return false
	}
	if caps&capBatch != 0 {
		rc.batchCap.Store(1)
		return true
	}
	rc.batchCap.Store(2)
	return false
}

// PingContext round-trips a no-op through the retry layer.
func (rc *ReliableClient) PingContext(ctx context.Context) error {
	return rc.do(ctx, "Ping", func(ctx context.Context, c *Client) error {
		return c.PingContext(ctx)
	})
}

// WeightedSum implements core.NDP; as with Client, the error-free
// signature returns nil on failure and the core query paths reject it.
func (rc *ReliableClient) WeightedSum(geo core.Geometry, idx []int, weights []uint64) []uint64 {
	res, err := rc.WeightedSumContext(context.Background(), geo, idx, weights)
	if err != nil {
		return nil
	}
	return res
}

// TagSum implements core.NDP; field.Zero on failure (rejected by the MAC
// check downstream).
func (rc *ReliableClient) TagSum(geo core.Geometry, idx []int, weights []uint64) field.Elem {
	tag, err := rc.TagSumContext(context.Background(), geo, idx, weights)
	if err != nil {
		return field.Zero
	}
	return tag
}

// WeightedSumElem is not part of the wire protocol (see Client); engines
// with a TEE mirror serve element queries via local fallback instead.
func (rc *ReliableClient) WeightedSumElem(geo core.Geometry, idx, jdx []int, weights []uint64) uint64 {
	panic("remote: WeightedSumElem not supported over the wire")
}

// TransportStats is a snapshot of the fault-tolerance counters.
type TransportStats struct {
	// Attempts counts every wire attempt, first tries included.
	Attempts uint64
	// Retries counts attempts beyond the first of each operation.
	Retries uint64
	// Dials counts pool (re)dials.
	Dials uint64
	// BreakerOpens counts circuit-open transitions.
	BreakerOpens uint64
	// BreakerState is "closed", "open", or "half-open".
	BreakerState string
}

// Stats reports the client's cumulative fault-tolerance counters.
func (rc *ReliableClient) Stats() TransportStats {
	return TransportStats{
		Attempts:     rc.attempts.Load(),
		Retries:      rc.retries.Load(),
		Dials:        rc.pool.Dials(),
		BreakerOpens: rc.breaker.Opens(),
		BreakerState: rc.breaker.State(),
	}
}

package remote

import (
	"errors"
	"testing"
	"time"
)

// fakeClock drives the breaker's probe timer without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(cfg BreakerConfig) (*Breaker, *fakeClock) {
	b := NewBreaker(cfg)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{FailureThreshold: 3, ProbeInterval: time.Second})
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected call %d: %v", i, err)
		}
		b.Failure()
	}
	if b.State() != "closed" {
		t.Fatalf("breaker opened after 2/3 failures: %s", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Failure()
	if b.State() != "open" {
		t.Fatalf("breaker not open after 3 failures: %s", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker allowed a call: %v", err)
	}
	if b.Opens() != 1 {
		t.Errorf("Opens() = %d, want 1", b.Opens())
	}
}

func TestBreakerSuccessResetsRun(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{FailureThreshold: 2, ProbeInterval: time.Second})
	b.Allow()
	b.Failure()
	b.Allow()
	b.Success() // non-consecutive: run resets
	b.Allow()
	b.Failure()
	if b.State() != "closed" {
		t.Fatalf("non-consecutive failures opened the breaker: %s", b.State())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{FailureThreshold: 1, ProbeInterval: time.Second})
	b.Allow()
	b.Failure()
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("open breaker allowed a call before the probe interval")
	}
	clk.advance(2 * time.Second)
	// The probe slot admits exactly one call.
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	if b.State() != "half-open" {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("second concurrent probe admitted")
	}
	b.Success()
	if b.State() != "closed" {
		t.Fatalf("successful probe left state %s", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed-after-probe breaker rejected: %v", err)
	}
	b.Success()
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{FailureThreshold: 1, ProbeInterval: time.Second})
	b.Allow()
	b.Failure()
	clk.advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Failure() // probe fails → straight back to open
	if b.State() != "open" {
		t.Fatalf("failed probe left state %s", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("reopened breaker allowed a call immediately")
	}
	if b.Opens() != 2 {
		t.Errorf("Opens() = %d, want 2", b.Opens())
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(BreakerConfig{Disabled: true})
	for i := 0; i < 100; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal("disabled breaker rejected a call")
		}
		b.Failure()
	}
}

func TestRetryBackoffGrowsAndCaps(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond,
		Multiplier: 2, Jitter: -1}.withDefaults()
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestRetryBackoffJitterBounded(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 100 * time.Millisecond,
		Jitter: 0.5}.withDefaults()
	for i := 0; i < 100; i++ {
		d := p.backoff(1)
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("jittered backoff %v outside [50ms, 100ms]", d)
		}
	}
}

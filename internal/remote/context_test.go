package remote

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"secndp/internal/core"
	"secndp/internal/memory"
)

// hungListener accepts connections and never answers — the pathological
// untrusted server a context deadline must defend against.
func hungListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	t.Cleanup(func() { ln.Close(); <-done })
	go func() {
		defer close(done)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	return ln.Addr().String()
}

func TestDeadlineOnHungServer(t *testing.T) {
	addr := hungListener(t)
	client, err := DialContext(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	geo := testGeometry(memory.TagNone, 4, 32)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.WeightedSumContext(ctx, geo, []int{0}, []uint64{1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung server: got %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline honored only after %v", elapsed)
	}
	// The connection is poisoned (stream desynced): later calls fail fast
	// instead of writing onto a broken stream.
	if _, err := client.WeightedSumContext(context.Background(), geo, []int{0}, []uint64{1}); err == nil {
		t.Error("poisoned client accepted a follow-up call")
	}
}

func TestCancelDuringCall(t *testing.T) {
	addr := hungListener(t)
	client, err := DialContext(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	geo := testGeometry(memory.TagNone, 4, 32)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	if _, err := client.WeightedSumContext(ctx, geo, []int{0}, []uint64{1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled call: got %v, want Canceled", err)
	}
}

func TestSetCallTimeout(t *testing.T) {
	addr := hungListener(t)
	client, err := DialContext(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.SetCallTimeout(50 * time.Millisecond)
	geo := testGeometry(memory.TagNone, 4, 32)
	start := time.Now()
	_, err = client.WeightedSumContext(context.Background(), geo, []int{0}, []uint64{1})
	if err == nil {
		t.Fatal("hung server call returned without error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("call timeout honored only after %v", elapsed)
	}
}

func TestServerRejectsTagSumWithoutTags(t *testing.T) {
	_, _, addr := startServer(t)
	client := dial(t, addr)
	geo := testGeometry(memory.TagNone, 4, 32)
	_, err := client.TagSumContext(context.Background(), geo, []int{0}, []uint64{1})
	if err == nil {
		t.Fatal("TagSum on tag-less geometry accepted")
	}
	// A server-reported rejection keeps the stream usable.
	if _, err := client.WeightedSumContext(context.Background(), testGeometry(memory.TagSep, 4, 32), []int{0}, []uint64{1}); err != nil {
		t.Errorf("connection unusable after server-side rejection: %v", err)
	}
}

func TestServerRejectsInvalidGeometry(t *testing.T) {
	_, _, addr := startServer(t)
	client := dial(t, addr)
	bad := testGeometry(memory.TagSep, 4, 32)
	bad.Layout.RowBytes = 100 // not a multiple of the 16-byte cipher block
	if _, err := client.WeightedSumContext(context.Background(), bad, []int{0}, []uint64{1}); err == nil {
		t.Fatal("invalid geometry accepted by server")
	}
	// Server survives and keeps serving valid requests on the same stream.
	if _, err := client.WeightedSumContext(context.Background(), testGeometry(memory.TagSep, 4, 32), []int{0}, []uint64{1}); err != nil {
		t.Errorf("server unusable after rejecting bad geometry: %v", err)
	}
}

func TestProvisionContextCancelled(t *testing.T) {
	_, _, addr := startServer(t)
	client := dial(t, addr)
	scheme, _ := core.NewScheme(key)
	geo := testGeometry(memory.TagSep, 8, 32)
	rows := randRows(rand.New(rand.NewSource(7)), 8, 32, 1<<20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ProvisionContext(ctx, client, scheme, geo, 1, rows); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled provision: got %v, want Canceled", err)
	}
}

// The remote client satisfies core.ContextNDP, so the concurrent engine
// drives it end to end: honest queries verify, tampered memory is caught.
func TestQueryCtxOverRemote(t *testing.T) {
	_, mem, addr := startServer(t)
	client := dial(t, addr)
	scheme, _ := core.NewScheme(key)
	geo := testGeometry(memory.TagSep, 16, 32)
	rng := rand.New(rand.NewSource(8))
	rows := randRows(rng, 16, 32, 1<<20)
	tab, err := ProvisionContext(context.Background(), client, scheme, geo, 1, rows)
	if err != nil {
		t.Fatal(err)
	}
	idx := []int{2, 7, 11}
	w := []uint64{1, 2, 3}
	got, err := tab.QueryCtx(context.Background(), client, idx, w,
		core.QueryOptions{Workers: 4, Verify: true})
	if err != nil {
		t.Fatalf("remote QueryCtx failed: %v", err)
	}
	want := rows[2][0] + 2*rows[7][0] + 3*rows[11][0]
	if got[0] != want&0xFFFFFFFF {
		t.Error("remote QueryCtx result wrong")
	}
	mem.FlipBit(geo.Layout.RowAddr(7)+1, 4)
	if _, err := tab.QueryCtx(context.Background(), client, idx, w,
		core.QueryOptions{Workers: 4, Verify: true}); !errors.Is(err, core.ErrVerification) {
		t.Errorf("remote tamper not rejected through QueryCtx: %v", err)
	}
}

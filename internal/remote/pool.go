package remote

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"secndp/internal/telemetry"
)

// ErrPoolClosed is returned by Pool.Get after Close.
var ErrPoolClosed = errors.New("remote: connection pool closed")

// DialFunc dials one wire connection; the default is DialContext. Tests
// substitute it to route through fault injectors or fail deterministically.
type DialFunc func(ctx context.Context, addr string) (*Client, error)

// PoolConfig tunes a reconnecting connection pool. The zero value selects
// the defaults documented per field.
type PoolConfig struct {
	// MaxIdle is how many healthy connections are kept warm for reuse.
	// <= 0 selects 2.
	MaxIdle int
	// DialTimeout bounds each redial plus its health check. <= 0 selects 2s.
	DialTimeout time.Duration
	// CallTimeout is installed as the default per-call deadline on every
	// pooled connection (Client.SetCallTimeout). 0 means none.
	CallTimeout time.Duration
	// Dial overrides the dialer. nil selects DialContext.
	Dial DialFunc
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.MaxIdle <= 0 {
		c.MaxIdle = 2
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.Dial == nil {
		c.Dial = DialContext
	}
	return c
}

// Pool is a reconnecting pool of wire connections to one NDP server,
// replacing the single-Client pattern whose connection stays poisoned
// after its first transport failure. Get hands out a healthy connection —
// reusing an idle one when possible, otherwise performing a
// health-checked dial (the new connection must answer a Ping before it is
// handed out). Put returns a connection for reuse; poisoned connections
// are discarded and replaced on the next Get. Safe for concurrent use.
type Pool struct {
	addr string
	cfg  PoolConfig

	mu     sync.Mutex
	idle   []*Client
	closed bool

	dials atomic.Uint64
	// mDials mirrors dials onto a registry counter; atomic so Instrument
	// may land while connections are being dialed. A nil load is a no-op.
	mDials atomic.Pointer[telemetry.Counter]
}

// Instrument mirrors the pool's dial counter onto a telemetry counter.
// A nil counter is a valid no-op.
func (p *Pool) Instrument(dials *telemetry.Counter) { p.mDials.Store(dials) }

// NewPool builds a pool for one server address. No connection is made
// until the first Get.
func NewPool(addr string, cfg PoolConfig) *Pool {
	return &Pool{addr: addr, cfg: cfg.withDefaults()}
}

// Get returns a healthy connection, redialing if every pooled one has been
// poisoned or discarded.
func (p *Pool) Get(ctx context.Context) (*Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	for len(p.idle) > 0 {
		c := p.idle[len(p.idle)-1]
		p.idle = p.idle[:len(p.idle)-1]
		if c.Usable() {
			p.mu.Unlock()
			return c, nil
		}
		c.Close()
	}
	p.mu.Unlock()

	dctx, cancel := context.WithTimeout(ctx, p.cfg.DialTimeout)
	defer cancel()
	c, err := p.cfg.Dial(dctx, p.addr)
	if err != nil {
		return nil, err
	}
	p.dials.Add(1)
	p.mDials.Load().Inc()
	if err := c.PingContext(dctx); err != nil {
		c.Close()
		return nil, fmt.Errorf("remote: dial health check: %w", err)
	}
	if p.cfg.CallTimeout > 0 {
		c.SetCallTimeout(p.cfg.CallTimeout)
	}
	return c, nil
}

// Put returns a connection to the pool. Poisoned connections are closed
// instead; beyond MaxIdle warm connections, extras are closed too.
func (p *Pool) Put(c *Client) {
	if c == nil {
		return
	}
	if !c.Usable() {
		c.Close()
		return
	}
	p.mu.Lock()
	if p.closed || len(p.idle) >= p.cfg.MaxIdle {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// Close closes every idle connection and fails all future Gets.
// Connections currently handed out are closed by their users via Put.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for _, c := range p.idle {
		c.Close()
	}
	p.idle = nil
	return nil
}

// Dials reports how many connections the pool has dialed — the redial
// count observable by tests and operators.
func (p *Pool) Dials() uint64 { return p.dials.Load() }

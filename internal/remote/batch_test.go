package remote

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"secndp/internal/core"
	"secndp/internal/memory"
	"secndp/internal/telemetry"
)

// startInstrumentedServer is startServer with a telemetry registry
// attached, so tests can count operations per opcode on the wire.
func startInstrumentedServer(t *testing.T) (*telemetry.Registry, *memory.Space, string) {
	t.Helper()
	mem := memory.NewSpace()
	srv := NewServer(mem)
	reg := telemetry.NewRegistry()
	srv.Instrument(reg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return reg, mem, addr
}

func opCount(reg *telemetry.Registry, name string) uint64 {
	return reg.Counter("secndp_server_ops_"+name+"_total", "").Value()
}

// TestRemoteBatchOneRoundTrip is the headline acceptance check for the
// batched pipeline: N verified queries over a remote NDP cost exactly one
// opBatch exchange — and zero per-query weighted-sum/tag-sum ops — as
// counted by the server's own per-opcode telemetry.
func TestRemoteBatchOneRoundTrip(t *testing.T) {
	reg, _, addr := startInstrumentedServer(t)
	client := dial(t, addr)
	scheme, err := core.NewScheme(key)
	if err != nil {
		t.Fatal(err)
	}
	geo := testGeometry(memory.TagSep, 32, 32)
	rng := rand.New(rand.NewSource(71))
	rows := randRows(rng, 32, 32, 1<<20)
	tab, err := Provision(client, scheme, geo, 1, rows)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]core.BatchRequest, 12)
	for i := range reqs {
		reqs[i] = core.BatchRequest{
			Idx:     []int{rng.Intn(8), rng.Intn(8)}, // duplicate-heavy on purpose
			Weights: []uint64{1 + rng.Uint64()%8, 1 + rng.Uint64()%8},
		}
	}
	var stats core.BatchStats
	out := tab.QueryBatchCtx(context.Background(), client, reqs,
		core.QueryOptions{Verify: true, Stats: &stats})
	if err := core.FirstError(out); err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		want := make([]uint64, 32)
		for k, r := range reqs[i].Idx {
			for j := range want {
				want[j] = (want[j] + reqs[i].Weights[k]*rows[r][j]) & 0xFFFFFFFF
			}
		}
		for j := range want {
			if out[i].Res[j] != want[j] {
				t.Fatalf("request %d col %d: %d != %d", i, j, out[i].Res[j], want[j])
			}
		}
	}
	if !stats.Pipelined || stats.WireOps != 1 {
		t.Fatalf("batch did not coalesce: %+v", stats)
	}
	if got := opCount(reg, "batch"); got != 1 {
		t.Fatalf("server served %d batch ops, want exactly 1", got)
	}
	if ws, ts := opCount(reg, "weighted_sum"), opCount(reg, "tag_sum"); ws != 0 || ts != 0 {
		t.Fatalf("batch leaked per-query ops: %d weighted_sum, %d tag_sum", ws, ts)
	}
	if got := opCount(reg, "caps"); got != 1 {
		t.Fatalf("capability probe ran %d times, want exactly 1 (cached)", got)
	}
}

// TestRemoteBatchPerSubErrors: malformed sub-requests come back as
// per-sub server errors inside a successful batch reply, siblings are
// unaffected, and the connection stays in sync afterwards.
func TestRemoteBatchPerSubErrors(t *testing.T) {
	_, _, addr := startServer(t)
	client := dial(t, addr)
	scheme, _ := core.NewScheme(key)
	geo := testGeometry(memory.TagSep, 16, 32)
	rng := rand.New(rand.NewSource(72))
	rows := randRows(rng, 16, 32, 1<<20)
	if _, err := Provision(client, scheme, geo, 1, rows); err != nil {
		t.Fatal(err)
	}
	reqs := []core.BatchRequest{
		{Idx: []int{0, 3}, Weights: []uint64{1, 2}},
		{Idx: []int{99}, Weights: []uint64{1}},     // out of range
		{Idx: []int{1, 2}, Weights: []uint64{1}},   // length mismatch
		{},                                         // empty: valid, zero sums
		{Idx: []int{5}, Weights: []uint64{7}},
	}
	res, err := client.WeightedTagSumBatch(context.Background(), geo, reqs, true)
	if err != nil {
		t.Fatalf("batch-level error for per-sub problems: %v", err)
	}
	var se *serverError
	if !errors.As(res[1].Err, &se) || !strings.Contains(res[1].Err.Error(), "row 99") {
		t.Fatalf("out-of-range sub error = %v, want serverError naming row 99", res[1].Err)
	}
	if !errors.As(res[2].Err, &se) {
		t.Fatalf("length-mismatch sub error = %v, want serverError", res[2].Err)
	}
	for _, i := range []int{0, 3, 4} {
		if res[i].Err != nil {
			t.Fatalf("healthy sub-request %d failed: %v", i, res[i].Err)
		}
		if len(res[i].Sums) != 32 {
			t.Fatalf("sub-request %d: %d sums, want 32", i, len(res[i].Sums))
		}
	}
	for j := range res[3].Sums {
		if res[3].Sums[j] != 0 {
			t.Fatal("empty sub-request returned non-zero sums")
		}
	}
	// The stream must still be usable: a follow-up single op round-trips.
	if err := client.PingContext(context.Background()); err != nil {
		t.Fatalf("connection desynced after per-sub errors: %v", err)
	}
}

// TestRemoteBatchVerifyWithoutTags: asking a tag-less geometry for tag
// sums is a batch-level rejection — one statusErr, no partial answers —
// and the connection survives it.
func TestRemoteBatchVerifyWithoutTags(t *testing.T) {
	_, _, addr := startServer(t)
	client := dial(t, addr)
	scheme, _ := core.NewScheme(key)
	geo := testGeometry(memory.TagNone, 8, 32)
	rng := rand.New(rand.NewSource(73))
	rows := randRows(rng, 8, 32, 1<<20)
	if _, err := Provision(client, scheme, geo, 1, rows); err != nil {
		t.Fatal(err)
	}
	reqs := []core.BatchRequest{{Idx: []int{0}, Weights: []uint64{1}}}
	_, err := client.WeightedTagSumBatch(context.Background(), geo, reqs, true)
	var se *serverError
	if !errors.As(err, &se) {
		t.Fatalf("verify-without-tags error = %v, want batch-level serverError", err)
	}
	if err := client.PingContext(context.Background()); err != nil {
		t.Fatalf("connection desynced after batch rejection: %v", err)
	}
	// Without verification the same batch is fine.
	res, err := client.WeightedTagSumBatch(context.Background(), geo, reqs, false)
	if err != nil {
		t.Fatalf("unverified batch on TagNone failed: %v", err)
	}
	if res[0].Err != nil {
		t.Fatalf("unverified sub-request on TagNone failed: %v", res[0].Err)
	}
}

// TestRemoteBatchOversized: client-side guard on the advertised frame
// limit, before any bytes hit the wire.
func TestRemoteBatchOversized(t *testing.T) {
	_, _, addr := startServer(t)
	client := dial(t, addr)
	geo := testGeometry(memory.TagSep, 8, 32)
	reqs := make([]core.BatchRequest, maxBatchSubs+1)
	if _, err := client.WeightedTagSumBatch(context.Background(), geo, reqs, false); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

// TestReliableBatchEndToEnd drives the batch path through the reliable
// transport: capability probe, coalesced batch, and the cached probe
// result on a second batch.
func TestReliableBatchEndToEnd(t *testing.T) {
	reg, _, addr := startInstrumentedServer(t)
	rc, err := DialReliable(context.Background(), addr, ReliableConfig{
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond,
			MaxDelay: 4 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	scheme, _ := core.NewScheme(key)
	geo := testGeometry(memory.TagSep, 16, 32)
	rng := rand.New(rand.NewSource(74))
	rows := randRows(rng, 16, 32, 1<<20)
	tab, err := Provision(rc, scheme, geo, 1, rows)
	if err != nil {
		t.Fatal(err)
	}
	if !rc.SupportsBatch(context.Background()) {
		t.Fatal("reliable client does not report batch support against a batch-capable server")
	}
	for round := 0; round < 2; round++ {
		reqs := []core.BatchRequest{
			{Idx: []int{1, 5, 1}, Weights: []uint64{2, 3, 4}},
			{Idx: []int{5, 9}, Weights: []uint64{1, 7}},
		}
		var stats core.BatchStats
		out := tab.QueryBatchCtx(context.Background(), rc, reqs,
			core.QueryOptions{Verify: true, Stats: &stats})
		if err := core.FirstError(out); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !stats.Pipelined || stats.WireOps != 1 {
			t.Fatalf("round %d did not coalesce: %+v", round, stats)
		}
	}
	if got := opCount(reg, "batch"); got != 2 {
		t.Fatalf("server served %d batch ops, want 2", got)
	}
	// SupportsBatch may probe on a fresh pooled connection per client, but
	// the cached answer must keep the probe count bounded by connections,
	// not by batches.
	if caps := opCount(reg, "caps"); caps > opCount(reg, "ping")+2 {
		t.Fatalf("capability probe not cached: %d caps ops", caps)
	}
}

// TestRemoteBatchTamperDetected: the aggregated verifier must reject a
// batch whose rows were corrupted server-side, blaming only the touched
// sub-requests.
func TestRemoteBatchTamperDetected(t *testing.T) {
	_, mem, addr := startServer(t)
	client := dial(t, addr)
	scheme, _ := core.NewScheme(key)
	geo := testGeometry(memory.TagSep, 16, 32)
	rng := rand.New(rand.NewSource(75))
	rows := randRows(rng, 16, 32, 1<<20)
	tab, err := Provision(client, scheme, geo, 1, rows)
	if err != nil {
		t.Fatal(err)
	}
	mem.FlipBit(geo.Layout.RowAddr(6)+1, 4)
	reqs := []core.BatchRequest{
		{Idx: []int{0, 1}, Weights: []uint64{1, 1}},
		{Idx: []int{6}, Weights: []uint64{1}}, // touches the tampered row
		{Idx: []int{2, 3}, Weights: []uint64{5, 9}},
	}
	var stats core.BatchStats
	out := tab.QueryBatchCtx(context.Background(), client, reqs,
		core.QueryOptions{Verify: true, Stats: &stats})
	if !stats.Pipelined {
		t.Fatal("batch did not pipeline")
	}
	if !errors.Is(out[1].Err, core.ErrVerification) {
		t.Fatalf("tampered sub-request error = %v, want ErrVerification", out[1].Err)
	}
	for _, i := range []int{0, 2} {
		if out[i].Err != nil {
			t.Fatalf("clean sub-request %d rejected: %v", i, out[i].Err)
		}
	}
}

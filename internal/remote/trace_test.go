package remote

import (
	"bytes"
	"context"
	"encoding/binary"
	"math/rand"
	"testing"
	"time"

	"secndp/internal/core"
	"secndp/internal/telemetry"

	"secndp/internal/memory"
)

// Wire-level trace propagation: the opTraceCtx prefix must appear
// exactly when both sides opt in — an active span on the context AND a
// server advertising capTrace — and every other combination must
// produce frames byte-identical to the pre-trace protocol.

// tracedCtx returns a context carrying a live root span.
func tracedCtx(t *testing.T) (context.Context, *telemetry.ActiveSpan) {
	t.Helper()
	reg := telemetry.NewRegistry()
	ctx, span := reg.StartSpan(context.Background(), "test")
	if span == nil {
		t.Fatal("registry-backed StartSpan returned nil span")
	}
	return ctx, span
}

func TestTraceFrameUntracedEmpty(t *testing.T) {
	// Trace-capable connection, no span on the context: the frame starts
	// at the operation byte, exactly the legacy protocol.
	c := &Client{capsKnown: true, caps: serverCaps}
	if f := c.traceFrameLocked(context.Background()); len(f) != 0 {
		t.Fatalf("untraced call produced a %d-byte prefix, want none", len(f))
	}
}

func TestTraceFrameLegacyServerEmpty(t *testing.T) {
	// Active span but a server that never advertised capTrace: the
	// client must not send bytes a legacy server cannot parse.
	ctx, _ := tracedCtx(t)
	c := &Client{capsKnown: true, caps: capBatch}
	if f := c.traceFrameLocked(ctx); len(f) != 0 {
		t.Fatalf("traced call to legacy server produced a %d-byte prefix, want none", len(f))
	}
}

func TestTraceFramePrefixLayout(t *testing.T) {
	// Both sides opt in: opTraceCtx + 8-byte big-endian trace ID +
	// 8-byte parent span ID, nothing else.
	ctx, span := tracedCtx(t)
	c := &Client{capsKnown: true, caps: serverCaps}
	f := c.traceFrameLocked(ctx)
	if len(f) != 1+traceCtxLen {
		t.Fatalf("prefix is %d bytes, want %d", len(f), 1+traceCtxLen)
	}
	if f[0] != opTraceCtx {
		t.Fatalf("prefix op = %d, want opTraceCtx (%d)", f[0], opTraceCtx)
	}
	if got := telemetry.TraceID(binary.BigEndian.Uint64(f[1:9])); got != span.Trace() {
		t.Fatalf("prefix trace ID %s, want %s", got, span.Trace())
	}
	if got := telemetry.SpanID(binary.BigEndian.Uint64(f[9:17])); got != span.ID() {
		t.Fatalf("prefix parent span %s, want %s", got, span.ID())
	}
	// The prefixed frame is the legacy frame with the prefix prepended:
	// stripping it restores byte identity.
	geo := testGeometry(memory.TagSep, 8, 4)
	idx, w := []int{1, 2}, []uint64{3, 4}
	c.frame = appendQuery(appendGeometry(append(c.traceFrameLocked(ctx), opWeightedSum), geo), idx, w)
	legacy := appendQuery(appendGeometry([]byte{opWeightedSum}, geo), idx, w)
	if !bytes.Equal(c.frame[1+traceCtxLen:], legacy) {
		t.Fatal("traced frame body differs from the legacy frame")
	}
}

func TestTraceMixedLegacyServerQueryVerifies(t *testing.T) {
	// A tracing client against a legacy server: the capability probe
	// comes back without capTrace, the frames stay legacy, and the
	// verified query still round-trips.
	// Impersonate a pre-trace server: caps must be set before Listen
	// spawns the accept loop.
	srv := NewServer(memory.NewSpace())
	srv.caps = capBatch
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client := dial(t, addr)

	scheme, err := core.NewScheme(key)
	if err != nil {
		t.Fatal(err)
	}
	geo := testGeometry(memory.TagSep, 16, 8)
	rng := rand.New(rand.NewSource(7))
	rows := randRows(rng, 16, 8, 1<<20)
	tab, err := Provision(client, scheme, geo, 1, rows)
	if err != nil {
		t.Fatal(err)
	}

	ctx, span := tracedCtx(t)
	idx, w := []int{2, 7, 11}, []uint64{5, 6, 7}
	got, err := tab.QueryCtx(ctx, client, idx, w, core.QueryOptions{Verify: true})
	span.End()
	if err != nil {
		t.Fatalf("traced query against legacy server failed: %v", err)
	}
	for j := 0; j < 8; j++ {
		want := (5*rows[2][j] + 6*rows[7][j] + 7*rows[11][j]) & 0xFFFFFFFF
		if got[j] != want {
			t.Fatalf("col %d: %d != %d", j, got[j], want)
		}
	}
	if c := client.caps & capTrace; c != 0 {
		t.Fatal("client cached capTrace from a server that never advertised it")
	}
}

func TestTraceServerRecordsRemoteSpans(t *testing.T) {
	// Full propagation: the server's registry receives child spans for
	// the client's trace, stitched under the client's span IDs.
	srv := NewServer(memory.NewSpace())
	serverReg := telemetry.NewRegistry()
	srv.Instrument(serverReg) // before Listen, per its contract
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client := dial(t, addr)

	scheme, err := core.NewScheme(key)
	if err != nil {
		t.Fatal(err)
	}
	geo := testGeometry(memory.TagSep, 16, 8)
	rng := rand.New(rand.NewSource(8))
	rows := randRows(rng, 16, 8, 1<<20)
	tab, err := Provision(client, scheme, geo, 1, rows)
	if err != nil {
		t.Fatal(err)
	}

	ctx, span := tracedCtx(t)
	if _, err := tab.QueryCtx(ctx, client, []int{1, 3}, []uint64{2, 2}, core.QueryOptions{Verify: true}); err != nil {
		t.Fatal(err)
	}
	span.End()

	// The server finishes its spans after the reply is on the wire; poll
	// briefly for the tree to land in its registry.
	deadline := time.Now().Add(2 * time.Second)
	for {
		tree, ok := serverReg.TraceTree(span.Trace())
		if ok {
			var ops []string
			var haveSum, haveDecode bool
			for _, s := range tree.Spans {
				ops = append(ops, s.Op)
				if !s.Remote && s.Op != "decode" && s.Op != "gather_sum" {
					t.Fatalf("server-side span %q not marked remote", s.Op)
				}
				switch s.Op {
				case "server_weighted_sum", "server_tag_sum":
					// The wire parent is the client's "ndp" phase span (a
					// child of our root), so it must be set but is not the
					// root's own ID.
					if s.Parent == 0 {
						t.Fatalf("span %q has no parent link", s.Op)
					}
					haveSum = true
				case "decode":
					haveDecode = true
				}
			}
			if haveSum && haveDecode {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("server trace tree incomplete: ops %v", ops)
			}
		} else if time.Now().After(deadline) {
			t.Fatal("server registry never saw the client's trace")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

package remote

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"secndp/internal/core"
	"secndp/internal/memory"
)

var key = []byte("remote-test-key!")

func startServer(t *testing.T) (*Server, *memory.Space, string) {
	t.Helper()
	mem := memory.NewSpace()
	srv := NewServer(mem)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, mem, addr
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func testGeometry(placement memory.TagPlacement, n, m int) core.Geometry {
	return core.Geometry{
		Layout: memory.Layout{
			Placement: placement, Base: 0x10000, TagBase: 0x800000,
			NumRows: n, RowBytes: m * 4,
		},
		Params: core.Params{We: 32, M: m},
	}
}

func randRows(rng *rand.Rand, n, m int, bound uint64) [][]uint64 {
	rows := make([][]uint64, n)
	for i := range rows {
		rows[i] = make([]uint64, m)
		for j := range rows[i] {
			rows[i][j] = rng.Uint64() % bound
		}
	}
	return rows
}

func TestRemoteVerifiedQuery(t *testing.T) {
	_, _, addr := startServer(t)
	client := dial(t, addr)

	scheme, err := core.NewScheme(key)
	if err != nil {
		t.Fatal(err)
	}
	geo := testGeometry(memory.TagSep, 32, 32)
	rng := rand.New(rand.NewSource(1))
	rows := randRows(rng, 32, 32, 1<<20)
	tab, err := Provision(client, scheme, geo, 1, rows)
	if err != nil {
		t.Fatal(err)
	}
	idx := []int{1, 5, 9}
	w := []uint64{2, 3, 4}
	got, err := tab.QueryVerified(client, idx, w)
	if err != nil {
		t.Fatalf("remote verified query failed: %v", err)
	}
	for j := 0; j < 32; j++ {
		want := 2*rows[1][j] + 3*rows[5][j] + 4*rows[9][j]
		if got[j] != want&0xFFFFFFFF {
			t.Fatalf("col %d: %d != %d", j, got[j], want)
		}
	}
}

func TestRemoteECCPlacement(t *testing.T) {
	_, _, addr := startServer(t)
	client := dial(t, addr)
	scheme, _ := core.NewScheme(key)
	geo := testGeometry(memory.TagECC, 16, 32)
	rng := rand.New(rand.NewSource(2))
	rows := randRows(rng, 16, 32, 1<<20)
	tab, err := Provision(client, scheme, geo, 1, rows)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.QueryVerified(client, []int{0, 15}, []uint64{1, 1}); err != nil {
		t.Fatalf("Ver-ECC remote query failed: %v", err)
	}
}

func TestRemoteDetectsServerSideTamper(t *testing.T) {
	_, mem, addr := startServer(t)
	client := dial(t, addr)
	scheme, _ := core.NewScheme(key)
	geo := testGeometry(memory.TagSep, 8, 32)
	rng := rand.New(rand.NewSource(3))
	rows := randRows(rng, 8, 32, 1<<20)
	tab, err := Provision(client, scheme, geo, 1, rows)
	if err != nil {
		t.Fatal(err)
	}
	// The server operator (adversary) corrupts its own memory.
	mem.FlipBit(geo.Layout.RowAddr(1)+2, 3)
	if _, err := tab.QueryVerified(client, []int{0, 1}, []uint64{1, 1}); !errors.Is(err, core.ErrVerification) {
		t.Errorf("server-side tamper not rejected: %v", err)
	}
}

func TestRemotePlaintextNeverOnWire(t *testing.T) {
	// Provision ships ciphertext: the server's memory must not contain the
	// plaintext row bytes anywhere in the table region.
	_, mem, addr := startServer(t)
	client := dial(t, addr)
	scheme, _ := core.NewScheme(key)
	geo := testGeometry(memory.TagNone, 4, 32)
	rows := make([][]uint64, 4)
	for i := range rows {
		rows[i] = make([]uint64, 32)
		for j := range rows[i] {
			rows[i][j] = 0xA5A5A5A5 // recognizable pattern
		}
	}
	if _, err := Provision(client, scheme, geo, 1, rows); err != nil {
		t.Fatal(err)
	}
	stored := mem.Snapshot(geo.Layout.Base, 4*128)
	match := 0
	for i := 0; i+4 <= len(stored); i += 4 {
		if stored[i] == 0xA5 && stored[i+1] == 0xA5 && stored[i+2] == 0xA5 && stored[i+3] == 0xA5 {
			match++
		}
	}
	if match > 2 { // a couple of chance collisions are tolerable
		t.Errorf("plaintext pattern appears %d times in server memory", match)
	}
}

func TestRemoteConcurrentClients(t *testing.T) {
	_, _, addr := startServer(t)
	scheme, _ := core.NewScheme(key)
	geo := testGeometry(memory.TagSep, 16, 32)
	rng := rand.New(rand.NewSource(4))
	rows := randRows(rng, 16, 32, 1<<20)

	setup := dial(t, addr)
	tab, err := Provision(setup, scheme, geo, 1, rows)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for q := 0; q < 10; q++ {
				idx := []int{g % 16, (g + q) % 16}
				w := []uint64{1, 2}
				got, err := tab.QueryVerified(c, idx, w)
				if err != nil {
					errs <- err
					return
				}
				want := rows[idx[0]][0] + 2*rows[idx[1]][0]
				if got[0] != want&0xFFFFFFFF {
					errs <- errors.New("concurrent result mismatch")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestRemoteServerRejectsBadQueries(t *testing.T) {
	_, _, addr := startServer(t)
	client := dial(t, addr)
	geo := testGeometry(memory.TagNone, 4, 32)
	// The legacy error-free wrapper returns nil and records the rejection.
	if res := client.WeightedSum(geo, []int{99}, []uint64{1}); res != nil {
		t.Fatalf("out-of-range remote query returned %v, want nil", res)
	}
	if err := client.Err(); err == nil {
		t.Fatal("rejected query left no recorded error")
	}
	// A server-reported rejection keeps the stream usable.
	if !client.Usable() {
		t.Error("connection poisoned by a semantic rejection")
	}
}

func TestRemoteWriteECCValidation(t *testing.T) {
	_, _, addr := startServer(t)
	client := dial(t, addr)
	if err := client.WriteECC(0, make([]byte, 8)); err == nil {
		t.Error("short ECC tag accepted")
	}
}

func TestClientWeightedSumElemUnsupported(t *testing.T) {
	_, _, addr := startServer(t)
	client := dial(t, addr)
	defer func() {
		if recover() == nil {
			t.Fatal("WeightedSumElem did not panic")
		}
	}()
	client.WeightedSumElem(testGeometry(memory.TagNone, 4, 32), []int{0}, []int{0}, []uint64{1})
}

func TestRemoteColocPlacement(t *testing.T) {
	// Ver-coloc tags travel inside the data span; Provision must ship them.
	_, _, addr := startServer(t)
	client := dial(t, addr)
	scheme, _ := core.NewScheme(key)
	geo := core.Geometry{
		Layout: memory.Layout{
			Placement: memory.TagColoc, Base: 0x10000,
			NumRows: 8, RowBytes: 128,
		},
		Params: core.Params{We: 32, M: 32},
	}
	rng := rand.New(rand.NewSource(9))
	rows := randRows(rng, 8, 32, 1<<20)
	tab, err := Provision(client, scheme, geo, 1, rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tab.QueryVerified(client, []int{2, 6}, []uint64{3, 4})
	if err != nil {
		t.Fatalf("coloc remote query failed: %v", err)
	}
	want := 3*rows[2][0] + 4*rows[6][0]
	if got[0] != want&0xFFFFFFFF {
		t.Error("coloc remote result wrong")
	}
}

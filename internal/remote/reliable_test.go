package remote

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"secndp/internal/core"
	"secndp/internal/memory"
)

// fastRetry keeps test retries in the microsecond range.
func fastRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond,
		MaxDelay: 2 * time.Millisecond, Jitter: -1}
}

func dialReliable(t *testing.T, addr string, cfg ReliableConfig) *ReliableClient {
	t.Helper()
	rc, err := DialReliable(context.Background(), addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.Close() })
	return rc
}

func TestReliableQueryEndToEnd(t *testing.T) {
	_, _, addr := startServer(t)
	rc := dialReliable(t, addr, ReliableConfig{Retry: fastRetry()})
	scheme, _ := core.NewScheme(key)
	geo := testGeometry(memory.TagSep, 16, 32)
	rng := rand.New(rand.NewSource(21))
	rows := randRows(rng, 16, 32, 1<<20)
	tab, err := ProvisionContext(context.Background(), rc, scheme, geo, 1, rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tab.QueryCtx(context.Background(), rc, []int{1, 3}, []uint64{2, 5},
		core.QueryOptions{Verify: true})
	if err != nil {
		t.Fatalf("reliable query failed: %v", err)
	}
	want := 2*rows[1][0] + 5*rows[3][0]
	if got[0] != want&0xFFFFFFFF {
		t.Fatal("reliable query result wrong")
	}
	// One dial serves the whole session: provision + query reuse the
	// pooled connection.
	if d := rc.Stats().Dials; d != 1 {
		t.Errorf("dials = %d, want 1 (pool should reuse)", d)
	}
}

func TestReliableRedialsAfterServerRestart(t *testing.T) {
	mem := memory.NewSpace()
	srv := NewServer(mem)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rc := dialReliable(t, addr, ReliableConfig{Retry: fastRetry()})
	if err := rc.PingContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Restart the server on the same address: pooled connections die.
	srv.Close()
	srv2 := NewServer(mem)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("relisten: %v", err)
	}
	defer srv2.Close()
	// The next call fails on the stale pooled connection, then redials.
	if err := rc.PingContext(context.Background()); err != nil {
		t.Fatalf("ping after restart: %v", err)
	}
	st := rc.Stats()
	if st.Dials < 2 {
		t.Errorf("dials = %d, want >= 2 (redial after restart)", st.Dials)
	}
	if st.Retries == 0 {
		t.Error("no retry recorded across the restart")
	}
}

func TestReliableRetriesExhaustedTyped(t *testing.T) {
	mem := memory.NewSpace()
	srv := NewServer(mem)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rc := dialReliable(t, addr, ReliableConfig{
		Retry:   fastRetry(),
		Breaker: BreakerConfig{FailureThreshold: 100}, // keep the breaker out of this test
		Pool:    PoolConfig{DialTimeout: 200 * time.Millisecond},
	})
	srv.Close() // server gone for good
	err = rc.PingContext(context.Background())
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("dead server: got %v, want ErrRetriesExhausted", err)
	}
}

func TestReliableBreakerOpensAndRecovers(t *testing.T) {
	mem := memory.NewSpace()
	srv := NewServer(mem)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rc := dialReliable(t, addr, ReliableConfig{
		Retry:   RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Jitter: -1},
		Breaker: BreakerConfig{FailureThreshold: 2, ProbeInterval: 50 * time.Millisecond},
		Pool:    PoolConfig{DialTimeout: 200 * time.Millisecond},
	})
	srv.Close()
	// First op: both attempts fail → 2 consecutive failures → circuit opens.
	if err := rc.PingContext(context.Background()); err == nil {
		t.Fatal("ping succeeded against a dead server")
	}
	if st := rc.Stats(); st.BreakerState != "open" {
		t.Fatalf("breaker state = %s, want open", st.BreakerState)
	}
	// While open, calls fail fast with the typed sentinel.
	if err := rc.PingContext(context.Background()); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open circuit: got %v, want ErrCircuitOpen", err)
	}
	// Server comes back; after the probe interval, a probe closes the circuit.
	srv2 := NewServer(mem)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("relisten: %v", err)
	}
	defer srv2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := rc.PingContext(context.Background()); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("circuit never recovered after server came back")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := rc.Stats(); st.BreakerState != "closed" {
		t.Errorf("breaker state after recovery = %s, want closed", st.BreakerState)
	}
}

func TestReliableServerRejectionNotRetried(t *testing.T) {
	_, _, addr := startServer(t)
	rc := dialReliable(t, addr, ReliableConfig{Retry: fastRetry()})
	geo := testGeometry(memory.TagNone, 4, 32)
	before := rc.Stats().Attempts
	// TagSum on a tag-less geometry: a semantic statusErr rejection.
	if _, err := rc.TagSumContext(context.Background(), geo, []int{0}, []uint64{1}); err == nil {
		t.Fatal("tag-less TagSum accepted")
	}
	if got := rc.Stats().Attempts - before; got != 1 {
		t.Errorf("semantic rejection consumed %d attempts, want 1", got)
	}
	// The connection survives a semantic rejection: no redial needed.
	if err := rc.PingContext(context.Background()); err != nil {
		t.Fatalf("connection unusable after semantic rejection: %v", err)
	}
}

func TestReliableCallerDeadlineRespected(t *testing.T) {
	addr := hungListener(t)
	rc := NewReliable(addr, ReliableConfig{
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Jitter: -1},
	})
	defer rc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := rc.PingContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung server: got %v, want DeadlineExceeded", err)
	}
	// Per-attempt deadlines are carved from the caller's budget, so the
	// whole retry loop ends close to the caller's deadline, not attempts×budget.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop overran the caller deadline: %v", elapsed)
	}
}

func TestPoolDiscardsPoisonedConnections(t *testing.T) {
	_, _, addr := startServer(t)
	p := NewPool(addr, PoolConfig{})
	defer p.Close()
	c, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Poison it: a call over a severed socket is a transport failure.
	c.Close()
	c.PingContext(context.Background())
	if c.Usable() {
		t.Fatal("transport failure did not poison the connection")
	}
	p.Put(c)
	c2, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Put(c2)
	if c2 == c {
		t.Fatal("pool handed back a poisoned connection")
	}
	if err := c2.PingContext(context.Background()); err != nil {
		t.Fatalf("fresh pooled connection unhealthy: %v", err)
	}
}

func TestPoolClosed(t *testing.T) {
	_, _, addr := startServer(t)
	p := NewPool(addr, PoolConfig{})
	p.Close()
	if _, err := p.Get(context.Background()); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("closed pool Get: got %v, want ErrPoolClosed", err)
	}
}

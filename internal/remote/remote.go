// Package remote runs the untrusted NDP as an actual network service: an
// NDP server owns the untrusted memory and performs the ciphertext-side
// operations of Algorithms 4/5; a client on the trusted side implements
// core.NDP over a TCP connection. This realizes the paper's trust split as
// a real process boundary — everything that crosses the wire is what the
// adversary may see (ciphertext, public geometry, indices, weights) and
// everything that returns is verified by the processor-side scheme.
//
// The wire protocol is a minimal length-prefixed binary format (no
// dependencies): each request is one operation over one table region.
package remote

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"secndp/internal/core"
	"secndp/internal/field"
	"secndp/internal/memory"
)

// Op codes of the wire protocol.
const (
	opWeightedSum byte = 1
	opTagSum      byte = 2
	opWriteBlob   byte = 3 // provisioning path: load ciphertext into memory
	opWriteECC    byte = 4 // provisioning path: side-band tags
)

// status codes.
const (
	statusOK  byte = 0
	statusErr byte = 1
)

// maxVectorLen bounds request sizes a server will accept (DoS hygiene).
const maxVectorLen = 1 << 20

// ---- wire helpers -----------------------------------------------------------

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}

func writeGeometry(w *bufio.Writer, g core.Geometry) error {
	for _, v := range []uint64{
		uint64(g.Layout.Placement), g.Layout.Base, g.Layout.TagBase,
		uint64(g.Layout.NumRows), uint64(g.Layout.RowBytes),
		uint64(g.Params.We), uint64(g.Params.M), uint64(g.Params.ChecksumSubstrings),
	} {
		if err := writeUvarint(w, v); err != nil {
			return err
		}
	}
	return nil
}

func readGeometry(r *bufio.Reader) (core.Geometry, error) {
	var vals [8]uint64
	for i := range vals {
		v, err := readUvarint(r)
		if err != nil {
			return core.Geometry{}, err
		}
		vals[i] = v
	}
	g := core.Geometry{
		Layout: memory.Layout{
			Placement: memory.TagPlacement(vals[0]),
			Base:      vals[1],
			TagBase:   vals[2],
			NumRows:   int(vals[3]),
			RowBytes:  int(vals[4]),
		},
		Params: core.Params{
			We: uint(vals[5]), M: int(vals[6]), ChecksumSubstrings: int(vals[7]),
		},
	}
	return g, g.Validate()
}

func writeQuery(w *bufio.Writer, idx []int, weights []uint64) error {
	if err := writeUvarint(w, uint64(len(idx))); err != nil {
		return err
	}
	for _, i := range idx {
		if err := writeUvarint(w, uint64(i)); err != nil {
			return err
		}
	}
	for _, wt := range weights {
		if err := writeUvarint(w, wt); err != nil {
			return err
		}
	}
	return nil
}

func readQuery(r *bufio.Reader) ([]int, []uint64, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, nil, err
	}
	if n > maxVectorLen {
		return nil, nil, fmt.Errorf("remote: query of %d rows exceeds limit", n)
	}
	idx := make([]int, n)
	for k := range idx {
		v, err := readUvarint(r)
		if err != nil {
			return nil, nil, err
		}
		idx[k] = int(v)
	}
	weights := make([]uint64, n)
	for k := range weights {
		weights[k], err = readUvarint(r)
		if err != nil {
			return nil, nil, err
		}
	}
	return idx, weights, nil
}

// ---- server -----------------------------------------------------------------

// Server is the untrusted NDP process: it owns a memory.Space and answers
// ciphertext-side operations. It never holds key material.
type Server struct {
	mem *memory.Space
	ndp *core.HonestNDP

	mu sync.Mutex // serializes memory access across connections
	ln net.Listener
	wg sync.WaitGroup
}

// NewServer wraps an untrusted memory space.
func NewServer(mem *memory.Space) *Server {
	return &Server{mem: mem, ndp: &core.HonestNDP{Mem: mem}}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serve(conn)
		}()
	}
}

// serve handles one connection's request stream until EOF or error.
func (s *Server) serve(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		if err := s.serveOne(r, w); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) serveOne(r *bufio.Reader, w *bufio.Writer) error {
	op, err := r.ReadByte()
	if err != nil {
		return err
	}
	fail := func(msg string) error {
		if err := w.WriteByte(statusErr); err != nil {
			return err
		}
		if err := writeUvarint(w, uint64(len(msg))); err != nil {
			return err
		}
		_, err := w.WriteString(msg)
		return err
	}
	switch op {
	case opWeightedSum, opTagSum:
		geo, err := readGeometry(r)
		if err != nil {
			return fail(fmt.Sprintf("bad geometry: %v", err))
		}
		idx, weights, err := readQuery(r)
		if err != nil {
			return fail(fmt.Sprintf("bad query: %v", err))
		}
		for _, i := range idx {
			if i < 0 || i >= geo.Layout.NumRows {
				return fail(fmt.Sprintf("row %d out of range", i))
			}
		}
		s.mu.Lock()
		if op == opWeightedSum {
			res := s.ndp.WeightedSum(geo, idx, weights)
			s.mu.Unlock()
			if err := w.WriteByte(statusOK); err != nil {
				return err
			}
			if err := writeUvarint(w, uint64(len(res))); err != nil {
				return err
			}
			for _, v := range res {
				if err := writeUvarint(w, v); err != nil {
					return err
				}
			}
			return nil
		}
		tag := s.ndp.TagSum(geo, idx, weights)
		s.mu.Unlock()
		if err := w.WriteByte(statusOK); err != nil {
			return err
		}
		b := tag.Bytes()
		_, err = w.Write(b[:])
		return err

	case opWriteBlob:
		addr, err := readUvarint(r)
		if err != nil {
			return err
		}
		n, err := readUvarint(r)
		if err != nil {
			return err
		}
		if n > maxVectorLen {
			return fail("blob too large")
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		s.mu.Lock()
		s.mem.Write(addr, buf)
		s.mu.Unlock()
		return w.WriteByte(statusOK)

	case opWriteECC:
		addr, err := readUvarint(r)
		if err != nil {
			return err
		}
		buf := make([]byte, memory.TagBytes)
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		s.mu.Lock()
		s.mem.WriteECC(addr, buf)
		s.mu.Unlock()
		return w.WriteByte(statusOK)

	default:
		return fail(fmt.Sprintf("unknown op %d", op))
	}
}

// ---- client -----------------------------------------------------------------

// Client talks to a remote NDP server and implements core.NDP, so a
// core.Table can run Query/QueryVerified against a different process.
// Methods panic on transport errors to satisfy the core.NDP interface
// (whose results are always verified downstream); use Call-style wrappers
// if graceful degradation is needed.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

var _ core.NDP = (*Client)(nil)

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close shuts the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(send func() error) error {
	if err := send(); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	status, err := c.r.ReadByte()
	if err != nil {
		return err
	}
	if status == statusOK {
		return nil
	}
	n, err := readUvarint(c.r)
	if err != nil {
		return err
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(c.r, msg); err != nil {
		return err
	}
	return errors.New("remote: server error: " + string(msg))
}

// WeightedSum implements core.NDP over the wire.
func (c *Client) WeightedSum(geo core.Geometry, idx []int, weights []uint64) []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.roundTrip(func() error {
		if err := c.w.WriteByte(opWeightedSum); err != nil {
			return err
		}
		if err := writeGeometry(c.w, geo); err != nil {
			return err
		}
		return writeQuery(c.w, idx, weights)
	})
	if err != nil {
		panic(fmt.Sprintf("remote: WeightedSum: %v", err))
	}
	n, err := readUvarint(c.r)
	if err != nil {
		panic(fmt.Sprintf("remote: WeightedSum response: %v", err))
	}
	res := make([]uint64, n)
	for k := range res {
		res[k], err = readUvarint(c.r)
		if err != nil {
			panic(fmt.Sprintf("remote: WeightedSum response: %v", err))
		}
	}
	return res
}

// WeightedSumElem is not part of the wire protocol; element-granular
// queries are composed client-side from WeightedSum when needed.
func (c *Client) WeightedSumElem(geo core.Geometry, idx, jdx []int, weights []uint64) uint64 {
	panic("remote: WeightedSumElem not supported over the wire")
}

// TagSum implements core.NDP over the wire.
func (c *Client) TagSum(geo core.Geometry, idx []int, weights []uint64) field.Elem {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.roundTrip(func() error {
		if err := c.w.WriteByte(opTagSum); err != nil {
			return err
		}
		if err := writeGeometry(c.w, geo); err != nil {
			return err
		}
		return writeQuery(c.w, idx, weights)
	})
	if err != nil {
		panic(fmt.Sprintf("remote: TagSum: %v", err))
	}
	var b [16]byte
	if _, err := io.ReadFull(c.r, b[:]); err != nil {
		panic(fmt.Sprintf("remote: TagSum response: %v", err))
	}
	return field.FromBytes(b[:])
}

// WriteBlob provisions ciphertext bytes into the server's memory (the
// initialization transfer of Figure 4's T0 step).
func (c *Client) WriteBlob(addr uint64, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roundTrip(func() error {
		if err := c.w.WriteByte(opWriteBlob); err != nil {
			return err
		}
		if err := writeUvarint(c.w, addr); err != nil {
			return err
		}
		if err := writeUvarint(c.w, uint64(len(data))); err != nil {
			return err
		}
		_, err := c.w.Write(data)
		return err
	})
}

// WriteECC provisions a side-band tag (Ver-ECC placement).
func (c *Client) WriteECC(dataAddr uint64, tag []byte) error {
	if len(tag) != memory.TagBytes {
		return fmt.Errorf("remote: tag must be %d bytes", memory.TagBytes)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roundTrip(func() error {
		if err := c.w.WriteByte(opWriteECC); err != nil {
			return err
		}
		if err := writeUvarint(c.w, dataAddr); err != nil {
			return err
		}
		_, err := c.w.Write(tag)
		return err
	})
}

// Provision encrypts a table locally (trusted side) and ships only the
// resulting ciphertext and tags to the server — the plaintext never
// crosses the wire. Returns the processor-side table handle.
func Provision(c *Client, scheme *core.Scheme, geo core.Geometry, version uint64, rows [][]uint64) (*core.Table, error) {
	staging := memory.NewSpace()
	tab, err := scheme.EncryptTable(staging, geo, version, rows)
	if err != nil {
		return nil, err
	}
	span := int(geo.Layout.DataEnd() - geo.Layout.Base)
	if err := c.WriteBlob(geo.Layout.Base, staging.Snapshot(geo.Layout.Base, span)); err != nil {
		return nil, err
	}
	switch geo.Layout.Placement {
	case memory.TagSep:
		n := geo.Layout.NumRows * memory.TagBytes
		if err := c.WriteBlob(geo.Layout.TagBase, staging.Snapshot(geo.Layout.TagBase, n)); err != nil {
			return nil, err
		}
	case memory.TagECC:
		for i := 0; i < geo.Layout.NumRows; i++ {
			if err := c.WriteECC(geo.Layout.RowAddr(i), staging.ReadECC(geo.Layout.RowAddr(i), memory.TagBytes)); err != nil {
				return nil, err
			}
		}
	}
	return tab, nil
}

// Package remote runs the untrusted NDP as an actual network service: an
// NDP server owns the untrusted memory and performs the ciphertext-side
// operations of Algorithms 4/5; a client on the trusted side implements
// core.NDP over a TCP connection. This realizes the paper's trust split as
// a real process boundary — everything that crosses the wire is what the
// adversary may see (ciphertext, public geometry, indices, weights) and
// everything that returns is verified by the processor-side scheme.
//
// The wire protocol is a minimal length-prefixed binary format (no
// dependencies): each request is one operation over one table region.
package remote

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"secndp/internal/core"
	"secndp/internal/field"
	"secndp/internal/memory"
	"secndp/internal/otp"
	"secndp/internal/telemetry"
)

// Op codes of the wire protocol.
const (
	opWeightedSum byte = 1
	opTagSum      byte = 2
	opWriteBlob   byte = 3 // provisioning path: load ciphertext into memory
	opWriteECC    byte = 4 // provisioning path: side-band tags
	opPing        byte = 5 // no-op round trip: pool health checks, breaker probes
	opBatch       byte = 6 // whole []BatchRequest in one round trip
	opCaps        byte = 7 // capability probe; MUST stay body-free (see below)
	opTraceCtx    byte = 8 // 16-byte trace context prefix; reply-free (see below)
)

// opName returns an opcode's short series/span name.
func opName(op byte) string {
	switch op {
	case opWeightedSum:
		return "weighted_sum"
	case opTagSum:
		return "tag_sum"
	case opWriteBlob:
		return "write_blob"
	case opWriteECC:
		return "write_ecc"
	case opPing:
		return "ping"
	case opBatch:
		return "batch"
	case opCaps:
		return "caps"
	case opTraceCtx:
		return "trace_ctx"
	}
	return "unknown"
}

// status codes.
const (
	statusOK  byte = 0
	statusErr byte = 1
)

// Capability bits answered by opCaps. The probe request is the op byte
// alone — a legacy server reads exactly one byte before replying
// statusErr "unknown op", so a body-free probe is the only shape that
// leaves a legacy stream in sync.
const (
	capBatch uint64 = 1 << 0
	// capTrace: the server accepts an opTraceCtx prefix (op byte + 16
	// bytes: big-endian trace ID then parent span ID, no reply) ahead of
	// a request and stitches its server-side spans under that parent. A
	// client only ever sends the prefix after the probe showed this bit,
	// so legacy servers see the byte-identical pre-trace framing.
	capTrace uint64 = 1 << 1
)

// serverCaps is what this server implementation advertises.
const serverCaps = capBatch | capTrace

// traceCtxLen is opTraceCtx's fixed body: 8-byte trace ID + 8-byte
// parent span ID.
const traceCtxLen = 16

// batchFlagVerify asks the server to include per-sub-request tag sums.
const batchFlagVerify uint64 = 1 << 0

// maxVectorLen bounds request sizes a server will accept (DoS hygiene).
const maxVectorLen = 1 << 20

// maxBatchSubs bounds the sub-request count of one opBatch frame. An
// oversize count is a framing error (connection drop), like an oversized
// query — its payload is not worth draining.
const maxBatchSubs = 1 << 12

// ---- wire helpers -----------------------------------------------------------

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}

func writeGeometry(w *bufio.Writer, g core.Geometry) error {
	_, err := w.Write(appendGeometry(nil, g))
	return err
}

func readGeometry(r *bufio.Reader) (core.Geometry, error) {
	var vals [8]uint64
	for i := range vals {
		v, err := readUvarint(r)
		if err != nil {
			return core.Geometry{}, err
		}
		vals[i] = v
	}
	g := core.Geometry{
		Layout: memory.Layout{
			Placement: memory.TagPlacement(vals[0]),
			Base:      vals[1],
			TagBase:   vals[2],
			NumRows:   int(vals[3]),
			RowBytes:  int(vals[4]),
		},
		Params: core.Params{
			We: uint(vals[5]), M: int(vals[6]), ChecksumSubstrings: int(vals[7]),
		},
	}
	// Validation is the caller's job: a semantic rejection must wait until
	// the whole request has been drained, or the statusErr reply leaves the
	// stream out of sync.
	return g, nil
}

func writeQuery(w *bufio.Writer, idx []int, weights []uint64) error {
	_, err := w.Write(appendQuery(nil, idx, weights))
	return err
}

func readQuery(r *bufio.Reader) ([]int, []uint64, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, nil, err
	}
	if n > maxVectorLen {
		return nil, nil, fmt.Errorf("remote: query of %d rows exceeds limit", n)
	}
	idx := make([]int, n)
	for k := range idx {
		v, err := readUvarint(r)
		if err != nil {
			return nil, nil, err
		}
		idx[k] = int(v)
	}
	weights := make([]uint64, n)
	for k := range weights {
		weights[k], err = readUvarint(r)
		if err != nil {
			return nil, nil, err
		}
	}
	return idx, weights, nil
}

// writeBatchSub frames one batch sub-request. Unlike writeQuery it
// carries the index and weight counts separately: a malformed
// sub-request (mismatched lengths) must survive framing so the server
// can answer it with a per-sub error instead of desyncing the stream.
func writeBatchSub(w *bufio.Writer, idx []int, weights []uint64) error {
	_, err := w.Write(appendBatchSub(nil, idx, weights))
	return err
}

func readBatchSub(r *bufio.Reader) ([]int, []uint64, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, nil, err
	}
	if n > maxVectorLen {
		return nil, nil, fmt.Errorf("remote: sub-request of %d rows exceeds limit", n)
	}
	idx := make([]int, n)
	for k := range idx {
		v, err := readUvarint(r)
		if err != nil {
			return nil, nil, err
		}
		idx[k] = int(v)
	}
	m, err := readUvarint(r)
	if err != nil {
		return nil, nil, err
	}
	if m > maxVectorLen {
		return nil, nil, fmt.Errorf("remote: sub-request of %d weights exceeds limit", m)
	}
	weights := make([]uint64, m)
	for k := range weights {
		weights[k], err = readUvarint(r)
		if err != nil {
			return nil, nil, err
		}
	}
	return idx, weights, nil
}

// writeBatchRequest frames an opBatch request body (everything after the
// op byte): geometry, a flags word, the sub-request count, then each
// sub-request in writeBatchSub form.
func writeBatchRequest(w *bufio.Writer, geo core.Geometry, reqs []core.BatchRequest, verify bool) error {
	_, err := w.Write(appendBatchRequest(nil, geo, reqs, verify))
	return err
}

// readBatchRequest parses an opBatch request body. Errors are framing
// errors: the caller must drop the connection, not reply.
func readBatchRequest(r *bufio.Reader) (core.Geometry, []core.BatchRequest, bool, error) {
	geo, err := readGeometry(r)
	if err != nil {
		return core.Geometry{}, nil, false, err
	}
	flags, err := readUvarint(r)
	if err != nil {
		return core.Geometry{}, nil, false, err
	}
	count, err := readUvarint(r)
	if err != nil {
		return core.Geometry{}, nil, false, err
	}
	if count > maxBatchSubs {
		return core.Geometry{}, nil, false, fmt.Errorf("remote: batch of %d sub-requests exceeds limit", count)
	}
	reqs := make([]core.BatchRequest, count)
	for i := range reqs {
		idx, weights, err := readBatchSub(r)
		if err != nil {
			return core.Geometry{}, nil, false, err
		}
		reqs[i] = core.BatchRequest{Idx: idx, Weights: weights}
	}
	return geo, reqs, flags&batchFlagVerify != 0, nil
}

// writeBatchResponse frames an opBatch reply's payload (after the batch's
// own statusOK): one status byte per sub-request, then either its sums
// (+ tag when verifying) or its error message. Per-sub-request errors ride
// inside an overall-OK reply — only batch-level problems use the outer
// statusErr, so one bad sub-request cannot mask the rest of the batch.
func writeBatchResponse(w *bufio.Writer, res []core.NDPBatchResult, verify bool) error {
	_, err := w.Write(appendBatchResponse(nil, res, verify))
	return err
}

// readBatchResponse parses an opBatch reply's payload for a batch of count
// sub-requests. Per-sub-request server errors land in NDPBatchResult.Err
// (as *serverError); a non-nil returned error is a transport/framing
// failure.
func readBatchResponse(r *bufio.Reader, count int, verify bool) ([]core.NDPBatchResult, error) {
	res := make([]core.NDPBatchResult, count)
	for i := range res {
		status, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		switch status {
		case statusErr:
			n, err := readUvarint(r)
			if err != nil {
				return nil, err
			}
			if n > maxVectorLen {
				return nil, fmt.Errorf("remote: oversized error message (%d bytes)", n)
			}
			msg := make([]byte, n)
			if _, err := io.ReadFull(r, msg); err != nil {
				return nil, err
			}
			res[i].Err = &serverError{msg: string(msg)}
		case statusOK:
			sums, err := readSumResponse(r)
			if err != nil {
				return nil, err
			}
			res[i].Sums = sums
			if verify {
				if res[i].Tag, err = readTagResponse(r); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("remote: corrupt batch sub-status byte %#x", status)
		}
	}
	return res, nil
}

// ---- server -----------------------------------------------------------------

// Server is the untrusted NDP process: it owns a memory.Space and answers
// ciphertext-side operations. It never holds key material.
type Server struct {
	mem *memory.Space
	ndp *core.HonestNDP

	mu sync.Mutex // serializes memory access across connections
	ln net.Listener
	wg sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// Registry mirrors (nil-safe no-ops until Instrument runs): accepted
	// connections, operations served by opcode, per-op service-time
	// histograms, and rejected requests. reg additionally receives the
	// server-side trace spans for requests carrying an opTraceCtx prefix.
	reg        *telemetry.Registry
	mConns     *telemetry.Counter
	mOps       [opTraceCtx + 1]*telemetry.Counter
	mOpSeconds [opTraceCtx + 1]*telemetry.Histogram
	mRejects   *telemetry.Counter

	// caps is what opCaps advertises; NewServer sets serverCaps. Tests
	// clear bits to impersonate older servers.
	caps uint64
}

// Instrument mirrors the server's request counters onto a telemetry
// registry: connections accepted, operations served per opcode, per-op
// service-time histograms (secndp_server_op_<name>_seconds, covering
// request decode through response marshal), and semantic rejections
// (statusErr replies). It also enables server-side tracing: requests
// prefixed with a trace context record their decode/compute spans into
// reg's trace store. Call before Listen; a nil registry is a no-op.
func (s *Server) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.reg = reg
	s.mConns = reg.Counter("secndp_server_conns_total",
		"Connections accepted by the NDP server.")
	s.mRejects = reg.Counter("secndp_server_rejects_total",
		"Requests the NDP server rejected with a semantic error.")
	for op := opWeightedSum; op <= opTraceCtx; op++ {
		name := opName(op)
		s.mOps[op] = reg.Counter("secndp_server_ops_"+name+"_total",
			"NDP server "+name+" operations served.")
		if op == opTraceCtx {
			continue // a reply-free prefix, not a served operation
		}
		s.mOpSeconds[op] = reg.Histogram("secndp_server_op_"+name+"_seconds",
			"NDP server "+name+" service time, request decode through response marshal.", nil)
	}
}

// NewServer wraps an untrusted memory space.
func NewServer(mem *memory.Space) *Server {
	return &Server{mem: mem, ndp: &core.HonestNDP{Mem: mem}, conns: make(map[net.Conn]struct{}), caps: serverCaps}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the listener, severs live connections, and waits for their
// handlers — so a restart on the same address never deadlocks behind an
// idle client.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	err := s.ln.Close()
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	var delay time.Duration
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return // listener closed
			}
			// Transient accept failures (EMFILE under fd pressure,
			// ECONNABORTED) must not silently kill the listener: back off
			// and keep accepting until the listener itself is closed.
			if delay == 0 {
				delay = 5 * time.Millisecond
			} else if delay *= 2; delay > time.Second {
				delay = time.Second
			}
			time.Sleep(delay)
			continue
		}
		delay = 0
		s.mConns.Inc()
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
			}()
			s.serve(conn)
		}()
	}
}

// serve handles one connection's request stream until EOF or error. A
// panic while serving (a malformed request reaching a bounds check) drops
// only this connection — the server, which fields requests from untrusted
// clients, must not die with it.
func (s *Server) serve(conn net.Conn) {
	defer func() {
		if r := recover(); r != nil {
			_ = conn.Close()
		}
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	// The connection's reusable request/response frames: parsed vectors and
	// the response marshal buffer grow to the stream's high-water mark once
	// and serve every subsequent request allocation-free.
	fr := &connFrames{}
	for {
		if err := s.serveOne(r, w, fr); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) serveOne(r *bufio.Reader, w *bufio.Writer, fr *connFrames) error {
	op, err := r.ReadByte()
	if err != nil {
		return err
	}
	if int(op) < len(s.mOps) {
		s.mOps[op].Inc()
	}
	if op == opTraceCtx {
		// Reply-free trace-context prefix: remember the caller's trace and
		// parent span for the next operation on this connection. Only sent
		// by clients that saw capTrace, so there is no desync risk.
		var b [traceCtxLen]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return err
		}
		fr.traceID = binary.BigEndian.Uint64(b[0:8])
		fr.parentSpan = binary.BigEndian.Uint64(b[8:16])
		fr.tracePending = true
		return nil
	}
	// Server-side span for the operation the prefix announced; nil (all
	// methods no-op) without a prefix or without Instrument.
	var span *telemetry.ActiveSpan
	if fr.tracePending {
		fr.tracePending = false
		span = s.reg.StartRemoteSpan(telemetry.TraceID(fr.traceID),
			telemetry.SpanID(fr.parentSpan), "server_"+opName(op))
	}
	start := time.Now()
	defer func() {
		if int(op) < len(s.mOpSeconds) {
			s.mOpSeconds[op].Observe(time.Since(start))
		}
		span.End()
	}()
	fail := func(msg string) error {
		s.mRejects.Inc()
		span.Fail(errors.New(msg), telemetry.ErrClassInvalid)
		if err := w.WriteByte(statusErr); err != nil {
			return err
		}
		if err := writeUvarint(w, uint64(len(msg))); err != nil {
			return err
		}
		_, err := w.WriteString(msg)
		return err
	}
	switch op {
	case opWeightedSum, opTagSum:
		// Drain the full request first, then validate: statusErr replies to
		// a half-read request would leave the stream out of sync. Transport
		// and framing errors (including oversized queries, whose payload is
		// not worth draining) drop the connection instead.
		decode := span.Child("decode")
		geo, err := readGeometry(r)
		if err != nil {
			return err
		}
		idx, weights, err := fr.readQuery(r)
		if err != nil {
			return err
		}
		decode.End()
		// The geometry is validated with core.Geometry.Validate before any
		// memory is touched, rather than relied on to trip bounds checks
		// (or panics) downstream.
		if err := geo.Validate(); err != nil {
			return fail(fmt.Sprintf("bad geometry: %v", err))
		}
		// Validate bounds shape, not size: cap the row footprint so a
		// hostile geometry cannot drive gigabyte per-row allocations.
		if geo.Layout.RowBytes > maxVectorLen {
			return fail(fmt.Sprintf("row size %d exceeds limit", geo.Layout.RowBytes))
		}
		if op == opTagSum && geo.Layout.Placement == memory.TagNone {
			return fail("geometry has no tag placement")
		}
		for _, i := range idx {
			if i < 0 || i >= geo.Layout.NumRows {
				return fail(fmt.Sprintf("row %d out of range", i))
			}
		}
		s.mu.Lock()
		if op == opWeightedSum {
			sum := span.Child("gather_sum")
			res := s.ndp.WeightedSum(geo, idx, weights)
			s.mu.Unlock()
			sum.End()
			out := append(fr.out[:0], statusOK)
			out = binary.AppendUvarint(out, uint64(len(res)))
			for _, v := range res {
				out = binary.AppendUvarint(out, v)
			}
			fr.out = out
			_, err = w.Write(out)
			return err
		}
		sum := span.Child("gather_sum")
		tag := s.ndp.TagSum(geo, idx, weights)
		s.mu.Unlock()
		sum.End()
		b := tag.Bytes()
		fr.out = append(append(fr.out[:0], statusOK), b[:]...)
		_, err = w.Write(fr.out)
		return err

	case opWriteBlob:
		addr, err := readUvarint(r)
		if err != nil {
			return err
		}
		n, err := readUvarint(r)
		if err != nil {
			return err
		}
		if n > maxVectorLen {
			return fail("blob too large")
		}
		if addr > otp.MaxAddr {
			return fail(fmt.Sprintf("address %#x beyond the physical address space", addr))
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		s.mu.Lock()
		s.mem.Write(addr, buf)
		s.mu.Unlock()
		return w.WriteByte(statusOK)

	case opWriteECC:
		addr, err := readUvarint(r)
		if err != nil {
			return err
		}
		if addr > otp.MaxAddr {
			return fail(fmt.Sprintf("address %#x beyond the physical address space", addr))
		}
		buf := make([]byte, memory.TagBytes)
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		s.mu.Lock()
		s.mem.WriteECC(addr, buf)
		s.mu.Unlock()
		return w.WriteByte(statusOK)

	case opBatch:
		// Same drain-then-validate discipline as the single-query ops, at
		// batch granularity: framing errors drop the connection; semantic
		// problems with the batch as a whole get one statusErr after the
		// frame is fully drained; per-sub-request problems are answered
		// inside a statusOK reply so they cannot poison their neighbors.
		decode := span.Child("decode")
		geo, reqs, verify, err := fr.readBatchRequest(r)
		if err != nil {
			return err
		}
		decode.End()
		if err := geo.Validate(); err != nil {
			return fail(fmt.Sprintf("bad geometry: %v", err))
		}
		if geo.Layout.RowBytes > maxVectorLen {
			return fail(fmt.Sprintf("row size %d exceeds limit", geo.Layout.RowBytes))
		}
		if verify && geo.Layout.Placement == memory.TagNone {
			return fail("geometry has no tag placement")
		}
		s.mu.Lock()
		sum := span.Child("gather_sum")
		res, err := s.ndp.WeightedTagSumBatch(context.Background(), geo, reqs, verify)
		s.mu.Unlock()
		sum.End()
		if err != nil {
			return fail(fmt.Sprintf("batch failed: %v", err))
		}
		fr.out = appendBatchResponse(append(fr.out[:0], statusOK), res, verify)
		_, err = w.Write(fr.out)
		return err

	case opPing:
		return w.WriteByte(statusOK)

	case opCaps:
		if err := w.WriteByte(statusOK); err != nil {
			return err
		}
		return writeUvarint(w, s.caps)

	default:
		return fail(fmt.Sprintf("unknown op %d", op))
	}
}

// ---- client -----------------------------------------------------------------

// Client talks to a remote NDP server and implements core.NDP (and
// core.ContextNDP), so a core.Table can run queries against a different
// process. The *Context methods carry per-call deadlines: the context's
// deadline (or, absent one, the default set by SetCallTimeout) is applied
// to the connection, so a hung server cannot block the trusted side
// forever. The legacy deadline-free signatures remain as thin wrappers;
// because the core.NDP interface methods carry no error return, a failed
// legacy call returns a zero value and records the error (see Err) — the
// core query paths reject the zero values via their column-count check and
// verification rather than consuming them silently.
//
// After a transport-level failure (timeout, short read) the wire stream
// may be desynchronized, so the connection is marked unusable and every
// subsequent call fails fast — dial a fresh client, or use a ReliableClient
// which redials automatically. Server-reported errors (statusErr) leave
// the stream in sync and the client usable.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	timeout time.Duration
	fatal   error

	// frame is the reusable request marshal buffer: each call gathers its
	// whole request here (one Write into the transport instead of one per
	// varint). Guarded by mu like the rest of the connection state.
	frame []byte

	// Capability probe result, cached once a definitive answer arrives
	// (the server either answered opCaps or rejected it as unknown).
	capsKnown bool
	caps      uint64

	errMu   sync.Mutex
	lastErr error
}

var (
	_ core.NDP        = (*Client)(nil)
	_ core.ContextNDP = (*Client)(nil)
	_ core.BatchNDP   = (*Client)(nil)
)

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr)
}

// DialContext connects to a server, honoring the context's deadline and
// cancellation for the dial itself.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// SetCallTimeout sets the default per-call deadline applied when a call's
// context carries none (and used by the legacy deadline-free wrappers).
// Zero, the initial value, means no deadline.
func (c *Client) SetCallTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// Close shuts the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Usable reports whether the connection has not been poisoned by a
// transport failure — the health predicate the reconnecting pool uses to
// decide between reuse and redial.
func (c *Client) Usable() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fatal == nil
}

// Err returns the most recent error swallowed by an error-free legacy
// wrapper (WeightedSum, TagSum), or nil. It does not clear the record.
func (c *Client) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.lastErr
}

func (c *Client) setErr(err error) {
	c.errMu.Lock()
	c.lastErr = err
	c.errMu.Unlock()
}

// serverError is a statusErr response from the server. The stream stays in
// sync, so the connection remains usable after one.
type serverError struct{ msg string }

func (e *serverError) Error() string { return "remote: server error: " + e.msg }

// arm applies the context's deadline to the connection and returns a
// cleanup restoring the no-deadline state. The returned stop also guards
// against cancellation mid-call: ctx.Done fires a deadline in the past,
// unblocking any in-flight read. Caller holds c.mu.
func (c *Client) arm(ctx context.Context) (func(), error) {
	if c.fatal != nil {
		return nil, fmt.Errorf("remote: connection unusable after earlier failure: %w", c.fatal)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(dl)
	} else if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	stop := context.AfterFunc(ctx, func() { c.conn.SetDeadline(time.Unix(1, 0)) })
	return func() {
		stop()
		c.conn.SetDeadline(time.Time{})
	}, nil
}

// finish classifies a call's error: server-reported errors pass through;
// transport errors poison the connection and surface the context's error
// when the failure was deadline- or cancellation-induced. Caller holds c.mu.
func (c *Client) finish(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	var se *serverError
	if errors.As(err, &se) {
		return err
	}
	c.fatal = err
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("%w (transport: %v)", ctxErr, err)
	}
	// The socket deadline mirrors the context deadline, so it can fire a
	// beat before ctx.Err() flips non-nil; a timeout with a context
	// deadline set is still a deadline failure.
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		if _, ok := ctx.Deadline(); ok {
			return fmt.Errorf("%w (transport: %v)", context.DeadlineExceeded, err)
		}
	}
	return err
}

// readStatus consumes a response's status byte; on statusErr it also
// drains the error payload and returns it as a *serverError. A status byte
// outside {statusOK, statusErr} means the stream is corrupt or desynced —
// a transport error, so the caller's connection gets poisoned.
func readStatus(r *bufio.Reader) error {
	status, err := r.ReadByte()
	if err != nil {
		return err
	}
	switch status {
	case statusOK:
		return nil
	case statusErr:
	default:
		return fmt.Errorf("remote: corrupt status byte %#x", status)
	}
	n, err := readUvarint(r)
	if err != nil {
		return err
	}
	if n > maxVectorLen {
		return fmt.Errorf("remote: oversized error message (%d bytes)", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return err
	}
	return &serverError{msg: string(msg)}
}

// readSumResponse parses a WeightedSum reply's payload (after the status
// byte): a length-prefixed vector of ring elements.
func readSumResponse(r *bufio.Reader) ([]uint64, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxVectorLen {
		return nil, fmt.Errorf("remote: oversized response (%d values)", n)
	}
	res := make([]uint64, n)
	for k := range res {
		if res[k], err = readUvarint(r); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// readTagResponse parses a TagSum reply's payload: one 16-byte field
// element.
func readTagResponse(r *bufio.Reader) (field.Elem, error) {
	var b [16]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return field.Zero, err
	}
	return field.FromBytes(b[:]), nil
}

func (c *Client) roundTrip(send func() error) error {
	if err := send(); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	return readStatus(c.r)
}

// ensureCapsLocked runs the capability probe if no definitive answer is
// cached yet, mirroring CapabilitiesContext's caching rules: a legacy
// server's statusErr caches "no capabilities"; a transport failure
// caches nothing (the operation about to be sent will surface it).
// Caller holds c.mu with the connection armed.
func (c *Client) ensureCapsLocked() {
	if c.capsKnown {
		return
	}
	caps, err := c.capsLocked()
	if err != nil {
		var se *serverError
		if errors.As(err, &se) {
			c.caps, c.capsKnown = 0, true
		}
		return
	}
	c.caps, c.capsKnown = caps, true
}

// traceFrameLocked resets the request marshal buffer and, when ctx
// carries an active trace span AND the server has advertised capTrace,
// seeds it with the opTraceCtx prefix (op byte + big-endian trace ID +
// parent span ID). Untraced calls — and every call to a legacy server —
// produce a frame starting at the operation byte, byte-identical to the
// pre-trace protocol. The first traced call on a fresh connection runs
// the capability probe inline (one extra round trip, then cached).
// Caller holds c.mu with the connection armed.
func (c *Client) traceFrameLocked(ctx context.Context) []byte {
	f := c.frame[:0]
	span := telemetry.SpanFromContext(ctx)
	if span == nil {
		return f
	}
	c.ensureCapsLocked()
	if c.caps&capTrace == 0 {
		return f
	}
	f = append(f, opTraceCtx)
	f = binary.BigEndian.AppendUint64(f, uint64(span.Trace()))
	f = binary.BigEndian.AppendUint64(f, uint64(span.ID()))
	return f
}

// sendFrame writes the gathered request frame, flushes, and consumes the
// response status — the zero-copy counterpart of roundTrip. Caller holds
// c.mu and has marshaled the request into c.frame.
func (c *Client) sendFrame() error {
	if _, err := c.w.Write(c.frame); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	return readStatus(c.r)
}

// WeightedSumContext implements core.ContextNDP over the wire.
func (c *Client) WeightedSumContext(ctx context.Context, geo core.Geometry, idx []int, weights []uint64) ([]uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	done, err := c.arm(ctx)
	if err != nil {
		return nil, err
	}
	defer done()
	res, err := c.weightedSumLocked(ctx, geo, idx, weights)
	return res, c.finish(ctx, err)
}

func (c *Client) weightedSumLocked(ctx context.Context, geo core.Geometry, idx []int, weights []uint64) ([]uint64, error) {
	c.frame = appendQuery(appendGeometry(append(c.traceFrameLocked(ctx), opWeightedSum), geo), idx, weights)
	if err := c.sendFrame(); err != nil {
		return nil, err
	}
	return readSumResponse(c.r)
}

// WeightedSum implements core.NDP over the wire. The error-free signature
// cannot surface failures, so a failed call returns nil (recorded via Err);
// the core query paths turn that into a typed "ndp returned 0 columns"
// error instead of a silent wrong result.
func (c *Client) WeightedSum(geo core.Geometry, idx []int, weights []uint64) []uint64 {
	res, err := c.WeightedSumContext(context.Background(), geo, idx, weights)
	if err != nil {
		c.setErr(fmt.Errorf("remote: WeightedSum: %w", err))
		return nil
	}
	return res
}

// WeightedSumElem is not part of the wire protocol; element-granular
// queries are composed client-side from WeightedSum when needed.
func (c *Client) WeightedSumElem(geo core.Geometry, idx, jdx []int, weights []uint64) uint64 {
	panic("remote: WeightedSumElem not supported over the wire")
}

// TagSumContext implements core.ContextNDP over the wire.
func (c *Client) TagSumContext(ctx context.Context, geo core.Geometry, idx []int, weights []uint64) (field.Elem, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	done, err := c.arm(ctx)
	if err != nil {
		return field.Zero, err
	}
	defer done()
	tag, err := c.tagSumLocked(ctx, geo, idx, weights)
	return tag, c.finish(ctx, err)
}

func (c *Client) tagSumLocked(ctx context.Context, geo core.Geometry, idx []int, weights []uint64) (field.Elem, error) {
	c.frame = appendQuery(appendGeometry(append(c.traceFrameLocked(ctx), opTagSum), geo), idx, weights)
	if err := c.sendFrame(); err != nil {
		return field.Zero, err
	}
	return readTagResponse(c.r)
}

// TagSum implements core.NDP over the wire. The error-free signature
// cannot surface failures, so a failed call returns field.Zero (recorded
// via Err); a query verifying against it is rejected by the MAC check
// rather than silently accepted.
func (c *Client) TagSum(geo core.Geometry, idx []int, weights []uint64) field.Elem {
	tag, err := c.TagSumContext(context.Background(), geo, idx, weights)
	if err != nil {
		c.setErr(fmt.Errorf("remote: TagSum: %w", err))
		return field.Zero
	}
	return tag
}

// WeightedTagSumBatch implements core.BatchNDP over the wire: the whole
// batch's ciphertext sums (and, when verify is set, tag sums) in one
// round trip. Per-sub-request server errors land in the corresponding
// NDPBatchResult.Err; a non-nil returned error is batch-level (server
// rejection or transport failure) and decided nothing.
func (c *Client) WeightedTagSumBatch(ctx context.Context, geo core.Geometry, reqs []core.BatchRequest, verify bool) ([]core.NDPBatchResult, error) {
	if len(reqs) > maxBatchSubs {
		return nil, fmt.Errorf("remote: batch of %d sub-requests exceeds limit", len(reqs))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	done, err := c.arm(ctx)
	if err != nil {
		return nil, err
	}
	defer done()
	res, err := c.batchLocked(ctx, geo, reqs, verify)
	return res, c.finish(ctx, err)
}

func (c *Client) batchLocked(ctx context.Context, geo core.Geometry, reqs []core.BatchRequest, verify bool) ([]core.NDPBatchResult, error) {
	c.frame = appendBatchRequest(append(c.traceFrameLocked(ctx), opBatch), geo, reqs, verify)
	if err := c.sendFrame(); err != nil {
		return nil, err
	}
	return readBatchResponse(c.r, len(reqs), verify)
}

// CapabilitiesContext asks the server which optional operations it
// supports. The answer is cached per connection once definitive: a
// statusErr ("unknown op") from a legacy server counts as "no optional
// capabilities" — the probe frame is a bare op byte precisely so a legacy
// server rejects it without stream desync. Transport failures are returned
// and not cached.
func (c *Client) CapabilitiesContext(ctx context.Context) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capsKnown {
		return c.caps, nil
	}
	done, err := c.arm(ctx)
	if err != nil {
		return 0, err
	}
	defer done()
	caps, err := c.capsLocked()
	if err = c.finish(ctx, err); err != nil {
		var se *serverError
		if errors.As(err, &se) {
			c.caps, c.capsKnown = 0, true
			return 0, nil
		}
		return 0, err
	}
	c.caps, c.capsKnown = caps, true
	return caps, nil
}

func (c *Client) capsLocked() (uint64, error) {
	if err := c.roundTrip(func() error { return c.w.WriteByte(opCaps) }); err != nil {
		return 0, err
	}
	return readUvarint(c.r)
}

// SupportsBatch implements core.BatchNDP: whether the server answers
// opBatch, per the cached capability probe. False on probe transport
// failure (the batch path would fail the same way).
func (c *Client) SupportsBatch(ctx context.Context) bool {
	caps, err := c.CapabilitiesContext(ctx)
	return err == nil && caps&capBatch != 0
}

// PingContext performs a no-op round trip — the health check used by the
// reconnecting pool's dial path and the circuit breaker's half-open probe.
func (c *Client) PingContext(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	done, err := c.arm(ctx)
	if err != nil {
		return err
	}
	defer done()
	return c.finish(ctx, c.roundTrip(func() error {
		return c.w.WriteByte(opPing)
	}))
}

// WriteBlobContext provisions ciphertext bytes into the server's memory
// (the initialization transfer of Figure 4's T0 step).
func (c *Client) WriteBlobContext(ctx context.Context, addr uint64, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	done, err := c.arm(ctx)
	if err != nil {
		return err
	}
	defer done()
	// Gathered header, then the payload straight from the caller's buffer —
	// bufio passes large writes through without copying.
	return c.finish(ctx, c.roundTrip(func() error {
		c.frame = binary.AppendUvarint(binary.AppendUvarint(append(c.frame[:0], opWriteBlob), addr), uint64(len(data)))
		if _, err := c.w.Write(c.frame); err != nil {
			return err
		}
		_, err := c.w.Write(data)
		return err
	}))
}

// WriteBlob is WriteBlobContext without a deadline.
func (c *Client) WriteBlob(addr uint64, data []byte) error {
	return c.WriteBlobContext(context.Background(), addr, data)
}

// WriteECCContext provisions a side-band tag (Ver-ECC placement).
func (c *Client) WriteECCContext(ctx context.Context, dataAddr uint64, tag []byte) error {
	if len(tag) != memory.TagBytes {
		return fmt.Errorf("remote: tag must be %d bytes", memory.TagBytes)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	done, err := c.arm(ctx)
	if err != nil {
		return err
	}
	defer done()
	return c.finish(ctx, c.roundTrip(func() error {
		if err := c.w.WriteByte(opWriteECC); err != nil {
			return err
		}
		if err := writeUvarint(c.w, dataAddr); err != nil {
			return err
		}
		_, err := c.w.Write(tag)
		return err
	}))
}

// WriteECC is WriteECCContext without a deadline.
func (c *Client) WriteECC(dataAddr uint64, tag []byte) error {
	return c.WriteECCContext(context.Background(), dataAddr, tag)
}

// Transport is the client-side contract the trusted engine needs from an
// NDP connection: the context-aware compute operations plus the
// provisioning writes. It is satisfied by *Client (one connection, fails
// fast once poisoned) and *ReliableClient (reconnecting pool + retry +
// circuit breaker).
type Transport interface {
	core.ContextNDP
	WriteBlobContext(ctx context.Context, addr uint64, data []byte) error
	WriteECCContext(ctx context.Context, dataAddr uint64, tag []byte) error
	Close() error
}

var _ Transport = (*Client)(nil)

// ProvisionContext encrypts a table locally (trusted side) and ships only
// the resulting ciphertext and tags to the server — the plaintext never
// crosses the wire. The context bounds every transfer. Returns the
// processor-side table handle.
func ProvisionContext(ctx context.Context, c Transport, scheme *core.Scheme, geo core.Geometry, version uint64, rows [][]uint64) (*core.Table, error) {
	tab, _, err := ProvisionMirrored(ctx, c, scheme, geo, version, rows)
	return tab, err
}

// ProvisionMirrored is ProvisionContext additionally returning the TEE-side
// staging space the ciphertext was encrypted into. The staging space never
// leaves the trusted side, so it can serve as a trusted mirror for local
// fallback recomputation when the NDP becomes unreachable or starts failing
// verification — at the cost of keeping one in-TEE copy of the ciphertext.
func ProvisionMirrored(ctx context.Context, c Transport, scheme *core.Scheme, geo core.Geometry, version uint64, rows [][]uint64) (*core.Table, *memory.Space, error) {
	staging := memory.NewSpace()
	tab, err := scheme.EncryptTable(staging, geo, version, rows)
	if err != nil {
		return nil, nil, err
	}
	span := int(geo.Layout.DataEnd() - geo.Layout.Base)
	if err := c.WriteBlobContext(ctx, geo.Layout.Base, staging.Snapshot(geo.Layout.Base, span)); err != nil {
		return nil, nil, err
	}
	switch geo.Layout.Placement {
	case memory.TagSep:
		n := geo.Layout.NumRows * memory.TagBytes
		if err := c.WriteBlobContext(ctx, geo.Layout.TagBase, staging.Snapshot(geo.Layout.TagBase, n)); err != nil {
			return nil, nil, err
		}
	case memory.TagECC:
		for i := 0; i < geo.Layout.NumRows; i++ {
			if err := c.WriteECCContext(ctx, geo.Layout.RowAddr(i), staging.ReadECC(geo.Layout.RowAddr(i), memory.TagBytes)); err != nil {
				return nil, nil, err
			}
		}
	}
	return tab, staging, nil
}

// Provision is ProvisionContext without a deadline.
func Provision(c Transport, scheme *core.Scheme, geo core.Geometry, version uint64, rows [][]uint64) (*core.Table, error) {
	return ProvisionContext(context.Background(), c, scheme, geo, version, rows)
}

package remote

import (
	"errors"
	"sync"
	"time"

	"secndp/internal/telemetry"
)

// ErrCircuitOpen is returned when the circuit breaker is rejecting calls
// outright: the NDP has failed enough consecutive times that attempting
// the wire again is pointless until a probe succeeds. Branch with
// errors.Is; callers with a TEE fallback serve degraded results instead.
var ErrCircuitOpen = errors.New("remote: circuit breaker open")

// BreakerConfig tunes the transport circuit breaker. The zero value
// selects the defaults documented per field.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive transport failures
	// that opens the circuit. <= 0 selects 5.
	FailureThreshold int
	// ProbeInterval is how long an open circuit waits before letting a
	// single probe call through (half-open). <= 0 selects 250ms.
	ProbeInterval time.Duration
	// Disabled turns the breaker off entirely: Allow always passes.
	Disabled bool
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	return c
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a consecutive-failure circuit breaker: closed until
// FailureThreshold transport failures in a row, then open (every call
// rejected with ErrCircuitOpen) until ProbeInterval elapses, then
// half-open — exactly one probe call is let through, whose outcome closes
// or re-opens the circuit. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time // test hook

	mu      sync.Mutex
	state   breakerState
	fails   int
	probeAt time.Time
	probing bool
	opens   uint64

	// mOpens/mState mirror open transitions and the current state onto a
	// telemetry registry when instrumented (nil-safe no-ops otherwise).
	// The state gauge encodes 0 closed, 1 half-open, 2 open.
	mOpens *telemetry.Counter
	mState *telemetry.Gauge
}

// Gauge encodings of the breaker state (see Instrument).
const (
	BreakerGaugeClosed   = 0
	BreakerGaugeHalfOpen = 1
	BreakerGaugeOpen     = 2
)

func (s breakerState) gauge() int64 {
	switch s {
	case breakerOpen:
		return BreakerGaugeOpen
	case breakerHalfOpen:
		return BreakerGaugeHalfOpen
	default:
		return BreakerGaugeClosed
	}
}

// Instrument mirrors the breaker's open-transition count and current
// state onto telemetry metrics. Nil metrics are valid no-ops.
func (b *Breaker) Instrument(opens *telemetry.Counter, state *telemetry.Gauge) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.mOpens, b.mState = opens, state
	state.Set(b.state.gauge())
}

// NewBreaker builds a breaker from cfg (zero value → defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// Allow reports whether a call may proceed. A nil return from Allow must
// be matched by exactly one later Success or Failure, or a half-open
// probe slot would leak.
func (b *Breaker) Allow() error {
	if b.cfg.Disabled {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if b.now().Before(b.probeAt) {
			return ErrCircuitOpen
		}
		b.state = breakerHalfOpen
		b.mState.Set(BreakerGaugeHalfOpen)
		b.probing = true
		return nil
	default: // half-open: one probe in flight at a time
		if b.probing {
			return ErrCircuitOpen
		}
		b.probing = true
		return nil
	}
}

// Success records a completed call: the circuit closes and the failure
// run resets.
func (b *Breaker) Success() {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	b.state = breakerClosed
	b.mState.Set(BreakerGaugeClosed)
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// Failure records a transport failure: a failed half-open probe re-opens
// the circuit immediately; in the closed state the circuit opens once the
// consecutive-failure run reaches the threshold.
func (b *Breaker) Failure() {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= b.cfg.FailureThreshold {
		if b.state != breakerOpen {
			b.opens++
			b.mOpens.Inc()
		}
		b.state = breakerOpen
		b.mState.Set(BreakerGaugeOpen)
		b.probeAt = b.now().Add(b.cfg.ProbeInterval)
	}
}

// State reports the current state ("closed", "open", "half-open") for
// observability.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}

// Opens reports how many times the circuit has transitioned to open.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

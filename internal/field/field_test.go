package field

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// bigQ is the modulus as a math/big integer, the reference oracle.
var bigQ = new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 127), big.NewInt(1))

func toBig(e Elem) *big.Int {
	v := new(big.Int).SetUint64(e.Hi)
	v.Lsh(v, 64)
	return v.Add(v, new(big.Int).SetUint64(e.Lo))
}

func fromBig(v *big.Int) Elem {
	m := new(big.Int).Mod(v, bigQ)
	var lo, hi uint64
	words := m.Bits()
	if len(words) > 0 {
		lo = uint64(words[0])
	}
	if len(words) > 1 {
		hi = uint64(words[1])
	}
	return Elem{Hi: hi, Lo: lo}
}

func randElem(rng *rand.Rand) Elem {
	return New(rng.Uint64()&0x7FFFFFFFFFFFFFFF, rng.Uint64())
}

func TestConstants(t *testing.T) {
	if toBig(Q).Cmp(bigQ) != 0 {
		t.Fatalf("Q = %v, want 2^127-1", toBig(Q))
	}
	if !Zero.IsZero() {
		t.Error("Zero is not zero")
	}
	if One.Lo != 1 || One.Hi != 0 {
		t.Error("One is wrong")
	}
}

func TestNewReducesQ(t *testing.T) {
	if got := New(Q.Hi, Q.Lo); !got.IsZero() {
		t.Errorf("New(q) = %v, want 0", got)
	}
	// 2^127 = q+1 ≡ 1
	if got := New(1<<63, 0); !got.Equal(One) {
		t.Errorf("New(2^127) = %v, want 1", got)
	}
	// all ones (2^128-1) ≡ 2q+1 ≡ 1
	if got := New(^uint64(0), ^uint64(0)); !got.Equal(One) {
		t.Errorf("New(2^128-1) = %v, want 1", got)
	}
}

func TestAddAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b := randElem(rng), randElem(rng)
		got := Add(a, b)
		want := fromBig(new(big.Int).Add(toBig(a), toBig(b)))
		if !got.Equal(want) {
			t.Fatalf("Add(%v,%v) = %v, want %v", a, b, got, want)
		}
	}
}

func TestMulAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a, b := randElem(rng), randElem(rng)
		got := Mul(a, b)
		want := fromBig(new(big.Int).Mul(toBig(a), toBig(b)))
		if !got.Equal(want) {
			t.Fatalf("Mul(%v,%v) = %v, want %v", a, b, got, want)
		}
	}
}

func TestMulEdgeCases(t *testing.T) {
	qm1 := Elem{Hi: Q.Hi, Lo: Q.Lo - 1} // q-1 ≡ -1
	got := Mul(qm1, qm1)                // (-1)^2 = 1
	if !got.Equal(One) {
		t.Errorf("(q-1)^2 = %v, want 1", got)
	}
	if !Mul(Zero, qm1).IsZero() {
		t.Error("0 * x != 0")
	}
	if !Mul(One, qm1).Equal(qm1) {
		t.Error("1 * x != x")
	}
}

func TestSubNeg(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		a, b := randElem(rng), randElem(rng)
		got := Sub(a, b)
		want := fromBig(new(big.Int).Sub(toBig(a), toBig(b)))
		if !got.Equal(want) {
			t.Fatalf("Sub mismatch")
		}
		if !Add(a, Neg(a)).IsZero() {
			t.Fatalf("a + (-a) != 0")
		}
	}
	if !Neg(Zero).IsZero() {
		t.Error("Neg(0) != 0")
	}
}

func TestPowAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		a := randElem(rng)
		k := rng.Uint64() % 10000
		got := Pow(a, k)
		want := fromBig(new(big.Int).Exp(toBig(a), new(big.Int).SetUint64(k), bigQ))
		if !got.Equal(want) {
			t.Fatalf("Pow(%v, %d) mismatch", a, k)
		}
	}
}

func TestPowZeroExponent(t *testing.T) {
	if !Pow(Elem{Lo: 12345}, 0).Equal(One) {
		t.Error("x^0 != 1")
	}
}

func TestFermatLittleTheorem(t *testing.T) {
	// a^(q-1) ≡ 1 for a != 0. Exponent q-1 = 2^127-2 doesn't fit uint64,
	// so check via Inv: a * Inv(a) == 1 exercises a^(q-2).
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		a := randElem(rng)
		if a.IsZero() {
			continue
		}
		if !Mul(a, Inv(a)).Equal(One) {
			t.Fatalf("a * a^-1 != 1 for a = %v", a)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(Zero)
}

func TestBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		a := randElem(rng)
		b := a.Bytes()
		got := FromBytes(b[:])
		if !got.Equal(a) {
			t.Fatalf("bytes round trip: %v -> %v", a, got)
		}
	}
}

func TestFromBytesTruncatesBit127(t *testing.T) {
	// All 0xFF: 2^128-1 truncated to 127 bits = q ≡ 0.
	b := make([]byte, 16)
	for i := range b {
		b[i] = 0xFF
	}
	if got := FromBytes(b); !got.IsZero() {
		t.Errorf("FromBytes(all ones) = %v, want 0", got)
	}
}

func TestFromBytesPanicsShort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromBytes(short) did not panic")
		}
	}()
	FromBytes(make([]byte, 15))
}

// Property: field axioms via testing/quick on uint64-lifted elements.
func TestFieldAxiomsProperty(t *testing.T) {
	commutAdd := func(x, y uint64) bool {
		a, b := FromUint64(x), FromUint64(y)
		return Add(a, b).Equal(Add(b, a))
	}
	commutMul := func(x, y uint64) bool {
		a, b := FromUint64(x), FromUint64(y)
		return Mul(a, b).Equal(Mul(b, a))
	}
	distrib := func(x, y, z uint64) bool {
		a, b, c := FromUint64(x), FromUint64(y), FromUint64(z)
		return Mul(a, Add(b, c)).Equal(Add(Mul(a, b), Mul(a, c)))
	}
	for name, f := range map[string]interface{}{
		"add-commutative": commutAdd,
		"mul-commutative": commutMul,
		"distributive":    distrib,
	} {
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: associativity on full-width random elements.
func TestAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a, b, c := randElem(rng), randElem(rng), randElem(rng)
		if !Mul(Mul(a, b), c).Equal(Mul(a, Mul(b, c))) {
			t.Fatalf("mul not associative: %v %v %v", a, b, c)
		}
		if !Add(Add(a, b), c).Equal(Add(a, Add(b, c))) {
			t.Fatalf("add not associative")
		}
	}
}

func TestHornerMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.Intn(40)
		coeffs := make([]uint64, m)
		for i := range coeffs {
			coeffs[i] = rng.Uint64()
		}
		s := randElem(rng)
		h := Horner(s, coeffs)
		n := NaivePowerSum(s, coeffs)
		if !h.Equal(n) {
			t.Fatalf("trial %d: Horner %v != naive %v", trial, h, n)
		}
	}
}

func TestHornerEmpty(t *testing.T) {
	if !Horner(FromUint64(5), nil).IsZero() {
		t.Error("Horner of empty polynomial should be 0")
	}
}

// Property: linearity of the checksum — h(a·P1 + b·P2) = a·h(P1) + b·h(P2)
// when coefficients are lifted to the field (no ring reduction). This is
// the algebraic fact behind SecNDP verification (§IV-F).
func TestHornerLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		m := 1 + rng.Intn(16)
		p1 := make([]Elem, m)
		p2 := make([]Elem, m)
		for i := 0; i < m; i++ {
			p1[i] = FromUint64(rng.Uint64() % 1000)
			p2[i] = FromUint64(rng.Uint64() % 1000)
		}
		a := FromUint64(rng.Uint64() % 1000)
		b := FromUint64(rng.Uint64() % 1000)
		s := randElem(rng)

		comb := make([]Elem, m)
		for i := 0; i < m; i++ {
			comb[i] = Add(Mul(a, p1[i]), Mul(b, p2[i]))
		}
		lhs := HornerElems(s, comb)
		rhs := Add(Mul(a, HornerElems(s, p1)), Mul(b, HornerElems(s, p2)))
		if !lhs.Equal(rhs) {
			t.Fatalf("trial %d: checksum not linear", trial)
		}
	}
}

func TestMulUint64(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 5000; i++ {
		a := randElem(rng)
		k := rng.Uint64()
		if !MulUint64(a, k).Equal(Mul(a, FromUint64(k))) {
			t.Fatalf("MulUint64 disagrees with Mul: a=%v k=%d", a, k)
		}
	}
	// Extremes of the specialized carry chains: max canonical element,
	// max scalar, and the identities.
	qm1 := Elem{Hi: Q.Hi, Lo: Q.Lo - 1}
	for _, a := range []Elem{Zero, One, qm1, {Hi: Q.Hi}, {Lo: ^uint64(0)}} {
		for _, k := range []uint64{0, 1, 2, ^uint64(0), Q.Lo} {
			if got, want := MulUint64(a, k), Mul(a, FromUint64(k)); !got.Equal(want) {
				t.Fatalf("MulUint64(%v, %d) = %v, want %v", a, k, got, want)
			}
		}
	}
}

func TestDotUint64(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(130)
		a := make([]Elem, n)
		k := make([]uint64, n)
		want := Zero
		for i := range a {
			a[i] = randElem(rng)
			k[i] = rng.Uint64()
			want = Add(want, MulUint64(a[i], k[i]))
		}
		if got := DotUint64(a, k); !got.Equal(want) {
			t.Fatalf("trial %d (n=%d): DotUint64 = %v, want %v", trial, n, got, want)
		}
	}
	// Saturated inputs exercise every carry chain of the deferred fold.
	qm1 := Elem{Hi: Q.Hi, Lo: Q.Lo - 1}
	n := 256
	a := make([]Elem, n)
	k := make([]uint64, n)
	want := Zero
	for i := range a {
		a[i] = qm1
		k[i] = ^uint64(0)
		want = Add(want, MulUint64(a[i], k[i]))
	}
	if got := DotUint64(a, k); !got.Equal(want) {
		t.Fatalf("saturated DotUint64 = %v, want %v", got, want)
	}
}

func TestString(t *testing.T) {
	got := Elem{Hi: 1, Lo: 2}.String()
	if got != "00000000000000010000000000000002" {
		t.Errorf("String() = %q", got)
	}
}

//go:build !amd64

package field

// supportsDotAsm reports false where no dot-product assembly exists; the
// two-lane unrolled Go kernel in dot.go serves every caller instead.
func supportsDotAsm() bool { return false }

func dotAccumAsm(s *[4]uint64, a *Elem, k *uint64, n int) {
	panic("field: assembly dot kernel is not available on this architecture")
}

//go:build amd64

#include "textflag.h"

// GF(2^127-1) deferred-reduction dot-product kernel (BMI2 MULX).
//
// Accumulates Σ a[i]·k[i] into a 256-bit sum without any per-term
// reduction — the Go side performs the single Mersenne fold. Each term is
// two MULX limb products plus a seven-add carry chain; MULX leaves FLAGS
// untouched, so the chain never has to be rematerialized between the
// multiplies. The main loop retires four terms per iteration to amortize
// loop control, with a one-term tail.
//
// Register use:
//   DI  &s[0] (four-limb accumulator, in/out)
//   SI  &a[0] (Elem array: Hi at +0, Lo at +8, stride 16)
//   BX  &k[0]
//   CX  remaining term count
//   R8..R11  s0..s3
//   DX  current k[i] (implicit MULX multiplicand)
//   AX, R12, R13, R14  per-term products

// One term at byte offsets off_a(SI)/off_k(BX):
//   l0:h0 = a.Lo·k, l1:h1 = a.Hi·k
//   mid = h0+l1 (carry c1), top = h1+c1 (a.Hi < 2^63: no overflow)
//   s += top·2^128 + mid·2^64 + l0
#define DOTTERM(off_a, off_k) \
	MOVQ  off_k(BX), DX;            \
	MULXQ (off_a+8)(SI), AX, R12;   \
	MULXQ (off_a+0)(SI), R13, R14;  \
	ADDQ  R13, R12;                 \
	ADCQ  $0, R14;                  \
	ADDQ  AX, R8;                   \
	ADCQ  R12, R9;                  \
	ADCQ  R14, R10;                 \
	ADCQ  $0, R11

// func dotAccumAsm(s *[4]uint64, a *Elem, k *uint64, n int)
TEXT ·dotAccumAsm(SB), NOSPLIT, $0-32
	MOVQ s+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ k+16(FP), BX
	MOVQ n+24(FP), CX

	MOVQ 0(DI), R8
	MOVQ 8(DI), R9
	MOVQ 16(DI), R10
	MOVQ 24(DI), R11

	CMPQ CX, $4
	JB   tail

loop4:
	DOTTERM(0, 0)
	DOTTERM(16, 8)
	DOTTERM(32, 16)
	DOTTERM(48, 24)
	ADDQ $64, SI
	ADDQ $32, BX
	SUBQ $4, CX
	CMPQ CX, $4
	JAE  loop4

tail:
	TESTQ CX, CX
	JZ    done
	DOTTERM(0, 0)
	ADDQ  $16, SI
	ADDQ  $8, BX
	DECQ  CX
	JMP   tail

done:
	MOVQ R8, 0(DI)
	MOVQ R9, 8(DI)
	MOVQ R10, 16(DI)
	MOVQ R11, 24(DI)
	RET

// func cpuidLeaf7EBX() uint32
TEXT ·cpuidLeaf7EBX(SB), NOSPLIT, $0-4
	MOVL $0, AX
	CPUID
	CMPL AX, $7      // highest supported leaf must reach 7
	JB   none
	MOVL $7, AX
	XORL CX, CX
	CPUID
	MOVL BX, ret+0(FP)
	RET
none:
	MOVL $0, ret+0(FP)
	RET

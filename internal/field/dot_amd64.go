package field

// supportsDotAsm gates the MULX kernel on BMI2 (CPUID leaf 7, EBX bit 8),
// mirroring otp's AES-NI gate. MULX is the only extension the kernel
// needs: it multiplies without touching FLAGS, so the 256-bit carry chain
// survives across the two limb products of each term.
func supportsDotAsm() bool {
	const bmi2 = 1 << 8
	return cpuidLeaf7EBX()&bmi2 != 0
}

// dotAccumAsm adds Σ_i a[i]·k[i] into the 256-bit accumulator s.
// Implemented in dot_amd64.s; n must be >= 1.
//
//go:noescape
func dotAccumAsm(s *[4]uint64, a *Elem, k *uint64, n int)

// cpuidLeaf7EBX returns EBX of CPUID leaf 7 subleaf 0 (extended feature
// flags), or 0 when the processor predates leaf 7.
func cpuidLeaf7EBX() uint32

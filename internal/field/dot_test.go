package field

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// dotRefUint64 is the scalar reference: one fully reduced MulUint64+Add
// per term. Every vectorized path must agree with it exactly.
func dotRefUint64(a []Elem, k []uint64) Elem {
	acc := Zero
	for i := range a {
		acc = Add(acc, MulUint64(a[i], k[i]))
	}
	return acc
}

func randElems(rng *rand.Rand, n int) ([]Elem, []uint64) {
	a := make([]Elem, n)
	k := make([]uint64, n)
	for i := range a {
		a[i] = New(rng.Uint64(), rng.Uint64())
		k[i] = rng.Uint64()
	}
	return a, k
}

func TestDotUint64MatchesScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 64, 257} {
		a, k := randElems(rng, n)
		got := DotUint64(a, k)
		want := dotRefUint64(a, k)
		if !got.Equal(want) {
			t.Fatalf("n=%d: DotUint64 = %v, scalar reference = %v", n, got, want)
		}
	}
}

// TestDotAccumPathsLimbExact demands the assembly and generic kernels
// produce identical 256-bit accumulator limbs, not just equal reduced
// values: both compute the same integer sum mod 2^256.
func TestDotAccumPathsLimbExact(t *testing.T) {
	if !supportsDotAsm() {
		t.Skip("assembly dot kernel not available on this CPU")
	}
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13, 100} {
		a, k := randElems(rng, n)
		init := [4]uint64{rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()}
		sAsm, sGen := init, init
		dotAccumAsm(&sAsm, &a[0], &k[0], n)
		dotAccumGeneric(&sGen, a, k)
		if sAsm != sGen {
			t.Fatalf("n=%d: asm limbs %x != generic limbs %x (init %x)", n, sAsm, sGen, init)
		}
	}
}

func TestScaleAccumMatchesAddMulUint64(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 4, 5, 33} {
		a, k := randElems(rng, n)
		var vec, ref Acc
		vec.AddMulUint64(New(rng.Uint64(), rng.Uint64()), rng.Uint64())
		ref = vec // identical non-empty starting state
		vec.ScaleAccum(a, k)
		for i := range a {
			ref.AddMulUint64(a[i], k[i])
		}
		if got, want := vec.Sum(), ref.Sum(); !got.Equal(want) {
			t.Fatalf("n=%d: ScaleAccum sum %v != sequential AddMulUint64 sum %v", n, got, want)
		}
	}
}

func TestScaleAccumLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ScaleAccum with mismatched lengths did not panic")
		}
	}()
	var acc Acc
	acc.ScaleAccum(make([]Elem, 2), make([]uint64, 3))
}

// fuzzVectors decodes a fuzz payload into parallel Elem/uint64 vectors:
// 24 bytes per term (16 little-endian bytes of element, canonicalized via
// FromBytes, then 8 bytes of scalar).
func fuzzVectors(data []byte) ([]Elem, []uint64) {
	n := len(data) / 24
	if n > 4096 {
		n = 4096
	}
	a := make([]Elem, n)
	k := make([]uint64, n)
	for i := 0; i < n; i++ {
		off := i * 24
		a[i] = FromBytes(data[off : off+16])
		k[i] = binary.LittleEndian.Uint64(data[off+16 : off+24])
	}
	return a, k
}

// FuzzDotUint64 pins every vectorized dot kernel byte-for-byte against the
// scalar reference, and (where assembly exists) the asm accumulator
// limb-for-limb against the generic one.
func FuzzDotUint64(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 24))
	f.Add(make([]byte, 24*5))
	seed := make([]byte, 24*9)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		a, k := fuzzVectors(data)
		got := DotUint64(a, k)
		want := dotRefUint64(a, k)
		if !got.Equal(want) {
			t.Fatalf("DotUint64 = %v, scalar reference = %v (n=%d)", got, want, len(a))
		}
		if supportsDotAsm() && len(a) > 0 {
			var sAsm, sGen [4]uint64
			dotAccumAsm(&sAsm, &a[0], &k[0], len(a))
			dotAccumGeneric(&sGen, a, k)
			if sAsm != sGen {
				t.Fatalf("asm limbs %x != generic limbs %x (n=%d)", sAsm, sGen, len(a))
			}
		}
	})
}

// FuzzScaleAccum pins Acc.ScaleAccum against a sequential AddMulUint64
// loop from an arbitrary (fuzzer-chosen) starting accumulator state.
func FuzzScaleAccum(f *testing.F) {
	f.Add([]byte{}, uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(make([]byte, 24*3), uint64(1), uint64(2), uint64(3), uint64(4))
	f.Fuzz(func(t *testing.T, data []byte, s0, s1, s2, s3 uint64) {
		a, k := fuzzVectors(data)
		vec := Acc{s0: s0, s1: s1, s2: s2, s3: s3}
		ref := vec
		vec.ScaleAccum(a, k)
		for i := range a {
			ref.AddMulUint64(a[i], k[i])
		}
		if vec != ref {
			t.Fatalf("ScaleAccum limbs %+v != sequential limbs %+v (n=%d)", vec, ref, len(a))
		}
	})
}

func BenchmarkDotUint64(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a, k := randElems(rng, 512)
	var sink Elem
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = DotUint64(a, k)
	}
	_ = sink
}

func BenchmarkDotUint64Generic(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a, k := randElems(rng, 512)
	var sink Elem
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s [4]uint64
		dotAccumGeneric(&s, a, k)
		sink = fold256(s[0], s[1], s[2], s[3])
	}
	_ = sink
}

// Package field implements arithmetic in the prime field GF(q) for the
// Mersenne prime q = 2^127 - 1, the modulus of SecNDP's linear modular hash
// (paper §IV-F, Algorithms 2/3/5/8). The Mersenne structure makes reduction
// a shift-and-add: x mod q = (x & q) + (x >> 127), which is why the paper
// picks w_t = 127 "considering both security and performance".
//
// Elements are 127-bit values held in two uint64 limbs. All exported
// operations accept and return canonical representatives in [0, q).
package field

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Elem is a field element: value = Hi*2^64 + Lo, canonical in [0, 2^127-1).
type Elem struct {
	Hi, Lo uint64
}

// Q is the field modulus 2^127 - 1 represented as an out-of-range Elem
// (Q itself is congruent to zero and is never a canonical element).
var Q = Elem{Hi: 0x7FFFFFFFFFFFFFFF, Lo: 0xFFFFFFFFFFFFFFFF}

// Zero and One are the additive and multiplicative identities.
var (
	Zero = Elem{}
	One  = Elem{Lo: 1}
)

// Bits is the tag width w_t of the paper: 127.
const Bits = 127

// FromUint64 lifts a uint64 into the field.
func FromUint64(x uint64) Elem { return Elem{Lo: x} }

// New builds a canonical element from two limbs, reducing mod q.
func New(hi, lo uint64) Elem { return reduce(Elem{Hi: hi, Lo: lo}) }

// FromBytes interprets the first 16 bytes as a little-endian 128-bit
// integer, truncates to 127 bits ("first w_t bits" of a cipher block in
// Algorithms 2 and 3), and reduces mod q. Panics if b is shorter than 16
// bytes.
func FromBytes(b []byte) Elem {
	lo := binary.LittleEndian.Uint64(b[0:8])
	hi := binary.LittleEndian.Uint64(b[8:16]) & 0x7FFFFFFFFFFFFFFF // truncate bit 127
	return reduce(Elem{Hi: hi, Lo: lo})
}

// Bytes serializes the element as 16 little-endian bytes (bit 127 is zero).
func (e Elem) Bytes() [16]byte {
	var out [16]byte
	for i := 0; i < 8; i++ {
		out[i] = byte(e.Lo >> (8 * i))
		out[8+i] = byte(e.Hi >> (8 * i))
	}
	return out
}

// IsZero reports whether e is the additive identity.
func (e Elem) IsZero() bool { return e.Hi == 0 && e.Lo == 0 }

// Equal reports whether two canonical elements are equal.
func (e Elem) Equal(o Elem) bool { return e.Hi == o.Hi && e.Lo == o.Lo }

// String prints the element in hexadecimal.
func (e Elem) String() string { return fmt.Sprintf("%016x%016x", e.Hi, e.Lo) }

// reduce maps a full 128-bit value (possibly >= q) to its canonical
// representative. Because the input is < 2^128 = 4q + 4, two folds plus a
// conditional subtract suffice.
func reduce(e Elem) Elem {
	// fold: x = (x mod 2^127) + (x >> 127). x >> 127 is just the top bit.
	for e.Hi>>63 != 0 {
		top := e.Hi >> 63
		e.Hi &= 0x7FFFFFFFFFFFFFFF
		var c uint64
		e.Lo, c = bits.Add64(e.Lo, top, 0)
		e.Hi, _ = bits.Add64(e.Hi, 0, c)
	}
	// now e < 2^127; subtract q if e == q.
	if e.Hi == Q.Hi && e.Lo == Q.Lo {
		return Elem{}
	}
	return e
}

// Add returns a + b mod q.
func Add(a, b Elem) Elem {
	lo, c := bits.Add64(a.Lo, b.Lo, 0)
	hi, _ := bits.Add64(a.Hi, b.Hi, c)
	return reduce(Elem{Hi: hi, Lo: lo})
}

// Neg returns -a mod q.
func Neg(a Elem) Elem {
	if a.IsZero() {
		return a
	}
	lo, brw := bits.Sub64(Q.Lo, a.Lo, 0)
	hi, _ := bits.Sub64(Q.Hi, a.Hi, brw)
	return Elem{Hi: hi, Lo: lo}
}

// Sub returns a - b mod q.
func Sub(a, b Elem) Elem { return Add(a, Neg(b)) }

// Mul returns a * b mod q using a 256-bit schoolbook product followed by
// Mersenne folding (2^128 ≡ 2 mod q).
func Mul(a, b Elem) Elem {
	// 256-bit product into limbs r3:r2:r1:r0.
	h00, l00 := bits.Mul64(a.Lo, b.Lo)
	h01, l01 := bits.Mul64(a.Lo, b.Hi)
	h10, l10 := bits.Mul64(a.Hi, b.Lo)
	h11, l11 := bits.Mul64(a.Hi, b.Hi)

	r0 := l00
	r1, c := bits.Add64(h00, l01, 0)
	r2, c2 := bits.Add64(h01, l11, c)
	r3, _ := bits.Add64(h11, 0, c2)

	r1, c = bits.Add64(r1, l10, 0)
	r2, c = bits.Add64(r2, h10, c)
	r3, _ = bits.Add64(r3, 0, c)

	// N = (r3:r2)*2^128 + (r1:r0) ≡ 2*(r3:r2) + (r1:r0) mod q.
	// a,b < 2^127 so the product < 2^254 and (r3:r2) < 2^126;
	// 2*(r3:r2) fits in 127 bits.
	hi2 := r3<<1 | r2>>63
	lo2 := r2 << 1
	lo, c := bits.Add64(r0, lo2, 0)
	hi, carry := bits.Add64(r1, hi2, c)
	// carry out of 128 bits contributes 2 (since 2^128 ≡ 2).
	if carry != 0 {
		lo, c = bits.Add64(lo, 2, 0)
		hi, _ = bits.Add64(hi, 0, c)
	}
	return reduce(Elem{Hi: hi, Lo: lo})
}

// MulUint64 returns a * k mod q for a small (uint64) scalar. This is the
// hot operation when folding ring elements into checksums.
func MulUint64(a Elem, k uint64) Elem {
	// Specialized Mul with b.Hi = 0: the 192-bit product a*k is
	// r2:r1:r0, then one Mersenne fold (2^128 ≡ 2 mod q).
	h0, l0 := bits.Mul64(a.Lo, k)
	h1, l1 := bits.Mul64(a.Hi, k)
	r1, c := bits.Add64(h0, l1, 0)
	r2 := h1 + c // a.Hi < 2^63 keeps h1 < 2^63: no overflow
	lo, c := bits.Add64(l0, r2<<1, 0)
	hi, carry := bits.Add64(r1, r2>>63, c)
	if carry != 0 {
		lo, c = bits.Add64(lo, 2, 0)
		hi, _ = bits.Add64(hi, 0, c)
	}
	return reduce(Elem{Hi: hi, Lo: lo})
}

// DotUint64 returns Σ_i a[i]·k[i] mod q. The 192-bit term products
// accumulate into one 256-bit running sum with a single Mersenne fold at
// the end, so the inner loop is two Mul64s and three carried adds — no
// per-term reduction. This is the checksum kernel: hashing a row against
// a precomputed power table is exactly this dot product.
// The inner loop lives in dot.go (MULX assembly on amd64, two-lane
// unrolled Go elsewhere); dotRefUint64 in the tests preserves the scalar
// reference it is fuzzed against.
func DotUint64(a []Elem, k []uint64) Elem {
	if len(a) != len(k) {
		panic("field: DotUint64 length mismatch")
	}
	var s [4]uint64
	dotAccum(&s, a, k)
	return fold256(s[0], s[1], s[2], s[3])
}

// fold256 reduces a 256-bit sum s3:s2:s1:s0 to a canonical element via
// 2^128 ≡ 2 mod q. The top half must stay well below 2^127 (true for any
// sum of fewer than 2^62 terms of Elem·uint64 products).
func fold256(s0, s1, s2, s3 uint64) Elem {
	hi2 := s3<<1 | s2>>63
	lo2 := s2 << 1
	lo, c := bits.Add64(s0, lo2, 0)
	hi, carry := bits.Add64(s1, hi2, c)
	if carry != 0 {
		lo, c = bits.Add64(lo, 2, 0)
		hi, _ = bits.Add64(hi, 0, c)
	}
	return reduce(Elem{Hi: hi, Lo: lo})
}

// Acc is a deferred-reduction accumulator for sums of Elem·uint64
// products and canonical elements: terms land in a 256-bit running total
// and a single Mersenne fold happens in Sum. The zero value is an empty
// sum. It is the scatter-side counterpart of DotUint64 — use it when the
// terms arrive interleaved across many accumulators (e.g. per-request tag
// combination in the batched pipeline) instead of as one dense vector.
type Acc struct {
	s0, s1, s2, s3 uint64
}

// AddMulUint64 adds e·k to the accumulator.
func (a *Acc) AddMulUint64(e Elem, k uint64) {
	h0, l0 := bits.Mul64(e.Lo, k)
	h1, l1 := bits.Mul64(e.Hi, k)
	m1, c1 := bits.Add64(h0, l1, 0)
	var c uint64
	a.s0, c = bits.Add64(a.s0, l0, 0)
	a.s1, c = bits.Add64(a.s1, m1, c)
	a.s2, c = bits.Add64(a.s2, h1+c1, c)
	a.s3 += c
}

// Sum reduces the accumulated total to a canonical element.
func (a *Acc) Sum() Elem { return fold256(a.s0, a.s1, a.s2, a.s3) }

// Pow returns a^k mod q by square-and-multiply.
func Pow(a Elem, k uint64) Elem {
	res := One
	base := a
	for k > 0 {
		if k&1 == 1 {
			res = Mul(res, base)
		}
		base = Mul(base, base)
		k >>= 1
	}
	return res
}

// Inv returns the multiplicative inverse a^(q-2) mod q. Panics on zero.
func Inv(a Elem) Elem {
	if a.IsZero() {
		panic("field: inverse of zero")
	}
	// q - 2 = 2^127 - 3.
	// Exponentiate by the 127-bit exponent 0x7FFF...FFFD.
	res := One
	base := a
	// Low limb of exponent: 0xFFFFFFFFFFFFFFFD, high limb: 0x7FFFFFFFFFFFFFFF.
	exp := [2]uint64{0xFFFFFFFFFFFFFFFD, 0x7FFFFFFFFFFFFFFF}
	for limb := 0; limb < 2; limb++ {
		e := exp[limb]
		n := 64
		if limb == 1 {
			n = 63 // top limb has 63 significant bits
		}
		for i := 0; i < n; i++ {
			if e&1 == 1 {
				res = Mul(res, base)
			}
			base = Mul(base, base)
			e >>= 1
		}
	}
	return res
}

// Horner evaluates Σ_{j=0}^{m-1} coeffs[j] * s^(m-j) mod q — the linear
// modular hash of Algorithm 2 — using Horner's rule:
//
//	T = s * (((c0*s + c1)*s + c2) ... + c_{m-1})
//
// coeffs are ring elements (≤ 64 bits), lifted into the field.
func Horner(s Elem, coeffs []uint64) Elem {
	acc := Zero
	for _, c := range coeffs {
		acc = Add(Mul(acc, s), Elem{Lo: c})
	}
	return Mul(acc, s)
}

// HornerElems is Horner for field-element coefficients.
func HornerElems(s Elem, coeffs []Elem) Elem {
	acc := Zero
	for _, c := range coeffs {
		acc = Add(Mul(acc, s), c)
	}
	return Mul(acc, s)
}

// NaivePowerSum evaluates the same polynomial as Horner by computing each
// power independently. Quadratic; retained as the ablation baseline (A4 in
// DESIGN.md) and as a cross-check oracle in tests.
func NaivePowerSum(s Elem, coeffs []uint64) Elem {
	acc := Zero
	m := uint64(len(coeffs))
	for j, c := range coeffs {
		term := Mul(Pow(s, m-uint64(j)), Elem{Lo: c})
		acc = Add(acc, term)
	}
	return acc
}

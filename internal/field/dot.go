package field

import "math/bits"

// This file is the vectorized core shared by DotUint64 and Acc.ScaleAccum:
// a deferred-reduction accumulation kernel that folds Elem·uint64 term
// products into a 256-bit running sum. On amd64 with BMI2 the inner loop
// is hand-written MULX assembly (dot_amd64.s), CPUID-gated the same way
// otp's AES-NI keystream is; everywhere else a two-lane unrolled pure-Go
// kernel keeps the multiplier pipeline busy. Both paths compute the exact
// same 256-bit integer (addition mod 2^256 is order-independent), so the
// differential fuzzers in dot_test.go can demand limb-exact equality.

// useDotAsm is true when the assembly kernel is available and the CPU
// supports it (amd64 + BMI2). Tests flip it to cross-check both paths.
var useDotAsm = supportsDotAsm()

// dotAccum adds Σ_i a[i]·k[i] (an exact 256-bit integer sum) into s.
// Callers guarantee len(a) == len(k).
func dotAccum(s *[4]uint64, a []Elem, k []uint64) {
	if len(a) == 0 {
		return
	}
	if useDotAsm {
		dotAccumAsm(s, &a[0], &k[0], len(a))
		return
	}
	dotAccumGeneric(s, a, k)
}

// dotAccumGeneric is the portable kernel: two independent 256-bit lanes
// unrolled over element pairs, merged at the end. Splitting the carry
// chain in two lets the compiler overlap the Mul64s of adjacent terms
// instead of serializing every add behind the previous term's carries.
func dotAccumGeneric(s *[4]uint64, a []Elem, k []uint64) {
	s0, s1, s2, s3 := s[0], s[1], s[2], s[3]
	var t0, t1, t2, t3 uint64
	i := 0
	for ; i+1 < len(a); i += 2 {
		h0, l0 := bits.Mul64(a[i].Lo, k[i])
		h1, l1 := bits.Mul64(a[i].Hi, k[i])
		g0, m0 := bits.Mul64(a[i+1].Lo, k[i+1])
		g1, m1 := bits.Mul64(a[i+1].Hi, k[i+1])

		mid, c1 := bits.Add64(h0, l1, 0)
		var c uint64
		s0, c = bits.Add64(s0, l0, 0)
		s1, c = bits.Add64(s1, mid, c)
		s2, c = bits.Add64(s2, h1+c1, c) // h1 < 2^63 keeps h1+c1 from overflowing
		s3 += c

		nid, d1 := bits.Add64(g0, m1, 0)
		var d uint64
		t0, d = bits.Add64(t0, m0, 0)
		t1, d = bits.Add64(t1, nid, d)
		t2, d = bits.Add64(t2, g1+d1, d)
		t3 += d
	}
	if i < len(a) {
		h0, l0 := bits.Mul64(a[i].Lo, k[i])
		h1, l1 := bits.Mul64(a[i].Hi, k[i])
		mid, c1 := bits.Add64(h0, l1, 0)
		var c uint64
		s0, c = bits.Add64(s0, l0, 0)
		s1, c = bits.Add64(s1, mid, c)
		s2, c = bits.Add64(s2, h1+c1, c)
		s3 += c
	}
	// Merge the second lane (plain 256-bit add; carries beyond s3 wrap
	// mod 2^256, matching single-lane accumulation order-for-order).
	var c uint64
	s0, c = bits.Add64(s0, t0, 0)
	s1, c = bits.Add64(s1, t1, c)
	s2, c = bits.Add64(s2, t2, c)
	s3 += t3 + c
	s[0], s[1], s[2], s[3] = s0, s1, s2, s3
}

// ScaleAccum adds Σ_i elems[i]·k[i] to the accumulator through the same
// vectorized kernel as DotUint64 — a multi-term AddMulUint64. It is the
// tag-combination primitive: scaling a gathered run of tag pads by their
// query weights is exactly this operation.
func (a *Acc) ScaleAccum(elems []Elem, k []uint64) {
	if len(elems) != len(k) {
		panic("field: ScaleAccum length mismatch")
	}
	s := [4]uint64{a.s0, a.s1, a.s2, a.s3}
	dotAccum(&s, elems, k)
	a.s0, a.s1, a.s2, a.s3 = s[0], s[1], s[2], s[3]
}

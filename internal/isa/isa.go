// Package isa is a functional model of the paper's §V micro-architecture:
// the NDP ISA extensions (NDPInst, NDPLd), the SecNDP ISA extensions
// (ArithEnc, SecNDPInst, SecNDPLd), the NDP command format dispatched by
// the memory controller, the Rank-NDP PU register machine, and the SecNDP
// engine (encryption engine + OTP PU + verification engine) in front of
// the core.
//
// Where internal/ndp models *timing*, this package models *function*: an
// instruction stream executes against untrusted memory and produces
// architecturally visible results, with verification failures raising the
// interrupt the paper describes (§V-E3). It demonstrates the paper's
// central architectural claim in executable form: the NDP PU runs the
// *same* commands whether the data is plaintext or SecNDP ciphertext.
package isa

import (
	"fmt"

	"secndp/internal/memory"
	"secndp/internal/ring"
)

// Op is the NDP arithmetic operation of an NDP command.
type Op uint8

const (
	// OpMACC: reg[dst] += Imm × mem[addr : addr+vsize], the weighted
	// accumulate used by SLS (Figure 5's example encodes exactly this).
	OpMACC Op = iota
	// OpACC: reg[dst] += mem[...], an unweighted accumulate.
	OpACC
	// OpClear zeroes a register.
	OpClear
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpMACC:
		return "MACC"
	case OpACC:
		return "ACC"
	case OpClear:
		return "CLEAR"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// NDPInst is the baseline NDP instruction (§V, Figure 5): "all the
// operands for issuing an NDP command, including a data address, the
// operation Op, vector size vsize, data size dsize, an immediate operand
// Imm, and source/destination register IDs".
type NDPInst struct {
	Op    Op
	Addr  uint64 // physical address of the row vector
	VSize int    // elements in the vector (m)
	DSize uint8  // element width in bits (we)
	Imm   uint64 // the weight a_i
	Reg   int    // destination register
}

// NDPLd loads an NDP PU register back to the processor.
type NDPLd struct {
	Reg int
}

// SecNDPInst extends NDPInst with "two extra fields: the version number v
// and one extra bit indicating whether verification is needed" (§V-B).
type SecNDPInst struct {
	NDPInst
	Version uint64
	Verify  bool
	// TagAddr is the address of the row's tag when Verify is set (layout
	// dependent; the memory controller computes it from the table layout).
	TagAddr uint64
}

// SecNDPLd loads and decrypts a register pair (NDP PU + OTP PU), and "will
// also verify the data when loading" (§V-B).
type SecNDPLd struct {
	Reg    int
	Verify bool
}

// Command is the NDP command the memory controller dispatches to a rank PU
// — identical for protected and unprotected operation (§V-A: "The NDP
// commands and NDP PUs remain unchanged").
type Command struct {
	Op    Op
	Addr  uint64
	VSize int
	DSize uint8
	Imm   uint64
	Reg   int
}

// PU is one Rank-NDP processing unit: NDP_reg vector accumulator registers
// plus a tag accumulator per register (the §V-D "extended register" design
// option, used only when verification is on).
type PU struct {
	mem  *memory.Space
	regs [][]uint64
	m    int
}

// NewPU builds a PU with nregs registers of m elements.
func NewPU(mem *memory.Space, nregs, m int) (*PU, error) {
	if nregs <= 0 || m <= 0 {
		return nil, fmt.Errorf("isa: invalid PU shape regs=%d m=%d", nregs, m)
	}
	p := &PU{mem: mem, m: m, regs: make([][]uint64, nregs)}
	for i := range p.regs {
		p.regs[i] = make([]uint64, m)
	}
	return p, nil
}

// Execute runs one NDP command against the PU's memory. The PU is a dumb
// integer ALU: it neither knows nor cares whether the bytes are plaintext
// or SecNDP ciphertext.
func (p *PU) Execute(c Command) error {
	if c.Reg < 0 || c.Reg >= len(p.regs) {
		return fmt.Errorf("isa: register %d out of range [0,%d)", c.Reg, len(p.regs))
	}
	if c.Op == OpClear {
		for j := range p.regs[c.Reg] {
			p.regs[c.Reg][j] = 0
		}
		return nil
	}
	if c.VSize != p.m {
		return fmt.Errorf("isa: vector size %d != PU width %d", c.VSize, p.m)
	}
	switch c.DSize {
	case 8, 16, 32, 64:
	default:
		return fmt.Errorf("isa: unsupported data size %d (want 8/16/32/64)", c.DSize)
	}
	r, err := ring.New(uint(c.DSize))
	if err != nil {
		return fmt.Errorf("isa: %w", err)
	}
	raw := p.mem.Read(c.Addr, c.VSize*int(c.DSize)/8)
	vec := r.UnpackElems(raw)
	w := c.Imm
	if c.Op == OpACC {
		w = 1
	}
	r.ScaleAccum(p.regs[c.Reg], w, vec)
	return nil
}

// Load returns a copy of a register's value (the NDPLd data path).
func (p *PU) Load(reg int) ([]uint64, error) {
	if reg < 0 || reg >= len(p.regs) {
		return nil, fmt.Errorf("isa: register %d out of range", reg)
	}
	out := make([]uint64, p.m)
	copy(out, p.regs[reg])
	return out, nil
}

// Registers returns the register count (NDP_reg).
func (p *PU) Registers() int { return len(p.regs) }

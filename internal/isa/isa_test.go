package isa

import (
	"errors"
	"math/rand"
	"testing"

	"secndp/internal/core"
	"secndp/internal/memory"
)

var testKey = []byte("isa-test-key-16b")

const (
	testRows = 16
	testM    = 32
	testWe   = 32
)

// setup encrypts a table with core and returns the machine plus the
// plaintext and geometry, so ISA-level execution can be checked against
// the scheme-level implementation.
func setup(t *testing.T, placement memory.TagPlacement) (*Machine, core.Geometry, [][]uint64, *memory.Space) {
	t.Helper()
	scheme, err := core.NewScheme(testKey)
	if err != nil {
		t.Fatal(err)
	}
	geo := core.Geometry{
		Layout: memory.Layout{
			Placement: placement,
			Base:      0x10000,
			TagBase:   0x400000,
			NumRows:   testRows,
			RowBytes:  testM * testWe / 8,
		},
		Params: core.Params{We: testWe, M: testM},
	}
	rng := rand.New(rand.NewSource(1))
	rows := make([][]uint64, testRows)
	for i := range rows {
		rows[i] = make([]uint64, testM)
		for j := range rows[i] {
			rows[i][j] = rng.Uint64() % (1 << 20)
		}
	}
	mem := memory.NewSpace()
	if _, err := scheme.EncryptTable(mem, geo, 1, rows); err != nil {
		t.Fatal(err)
	}
	ma, err := NewMachine(testKey, mem, 4, testM, testWe)
	if err != nil {
		t.Fatal(err)
	}
	return ma, geo, rows, mem
}

func slsInst(geo core.Geometry, row int, w uint64, reg int, verify bool) SecNDPInst {
	inst := SecNDPInst{
		NDPInst: NDPInst{
			Op: OpMACC, Addr: geo.Layout.RowAddr(row),
			VSize: testM, DSize: testWe, Imm: w, Reg: reg,
		},
		Version: 1,
		Verify:  verify,
	}
	if verify {
		inst.TagAddr = geo.Layout.TagAddr(row)
	}
	return inst
}

func TestMachineSLSMatchesPlaintext(t *testing.T) {
	ma, geo, rows, _ := setup(t, memory.TagNone)
	idx := []int{1, 3, 5, 7}
	w := []uint64{2, 3, 4, 5}
	for k, i := range idx {
		if err := ma.Issue(slsInst(geo, i, w[k], 0, false), geo.Layout.Base); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ma.Load(SecNDPLd{Reg: 0})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < testM; j++ {
		var want uint64
		for k, i := range idx {
			want += w[k] * rows[i][j]
		}
		want &= 0xFFFFFFFF
		if res[j] != want {
			t.Fatalf("col %d: %d != %d", j, res[j], want)
		}
	}
}

func TestMachineVerifiedLoad(t *testing.T) {
	ma, geo, rows, _ := setup(t, memory.TagSep)
	idx := []int{0, 2, 4}
	w := []uint64{1, 2, 3}
	for k, i := range idx {
		if err := ma.Issue(slsInst(geo, i, w[k], 1, true), geo.Layout.Base); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ma.Load(SecNDPLd{Reg: 1, Verify: true})
	if err != nil {
		t.Fatalf("honest verified load failed: %v", err)
	}
	var want uint64
	for k, i := range idx {
		want += w[k] * rows[i][0]
	}
	if res[0] != want&0xFFFFFFFF {
		t.Fatalf("result wrong: %d != %d", res[0], want)
	}
}

func TestMachineVerifyInterruptOnTamper(t *testing.T) {
	ma, geo, _, mem := setup(t, memory.TagSep)
	mem.FlipBit(geo.Layout.RowAddr(2)+1, 3)
	for _, i := range []int{0, 2} {
		if err := ma.Issue(slsInst(geo, i, 1, 0, true), geo.Layout.Base); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ma.Load(SecNDPLd{Reg: 0, Verify: true}); !errors.Is(err, ErrVerifyInterrupt) {
		t.Fatalf("tampered load not interrupted: %v", err)
	}
}

func TestMachineUnverifiedLoadIgnoresTags(t *testing.T) {
	ma, geo, _, mem := setup(t, memory.TagSep)
	mem.FlipBit(geo.Layout.TagAddr(0), 0) // tag corrupted, data intact
	if err := ma.Issue(slsInst(geo, 0, 1, 0, false), geo.Layout.Base); err != nil {
		t.Fatal(err)
	}
	if _, err := ma.Load(SecNDPLd{Reg: 0}); err != nil {
		t.Fatalf("unverified load should succeed: %v", err)
	}
}

func TestMachineRegisterBindingEnforced(t *testing.T) {
	ma, geo, _, _ := setup(t, memory.TagSep)
	if err := ma.Issue(slsInst(geo, 0, 1, 0, true), geo.Layout.Base); err != nil {
		t.Fatal(err)
	}
	// Different version to the same register: architectural error.
	bad := slsInst(geo, 1, 1, 0, true)
	bad.Version = 2
	if err := ma.Issue(bad, geo.Layout.Base); err == nil {
		t.Error("version mix in one register accepted")
	}
	// Different seed address: also rejected.
	if err := ma.Issue(slsInst(geo, 1, 1, 0, true), geo.Layout.Base+16); err == nil {
		t.Error("seed mix in one register accepted")
	}
	// After Clear, rebinding is fine.
	if err := ma.Clear(0); err != nil {
		t.Fatal(err)
	}
	if err := ma.Issue(bad, geo.Layout.Base); err != nil {
		t.Errorf("rebinding after clear failed: %v", err)
	}
}

func TestMachineClearResetsAccumulators(t *testing.T) {
	ma, geo, rows, _ := setup(t, memory.TagSep)
	if err := ma.Issue(slsInst(geo, 0, 5, 2, true), geo.Layout.Base); err != nil {
		t.Fatal(err)
	}
	if err := ma.Clear(2); err != nil {
		t.Fatal(err)
	}
	if err := ma.Issue(slsInst(geo, 1, 1, 2, true), geo.Layout.Base); err != nil {
		t.Fatal(err)
	}
	res, err := ma.Load(SecNDPLd{Reg: 2, Verify: true})
	if err != nil {
		t.Fatalf("load after clear failed verification: %v", err)
	}
	if res[0] != rows[1][0] {
		t.Errorf("stale accumulator after clear: %d != %d", res[0], rows[1][0])
	}
}

func TestMachineValidation(t *testing.T) {
	ma, geo, _, _ := setup(t, memory.TagNone)
	bad := slsInst(geo, 0, 1, 9, false)
	if err := ma.Issue(bad, geo.Layout.Base); err == nil {
		t.Error("out-of-range register accepted")
	}
	wrongW := slsInst(geo, 0, 1, 0, false)
	wrongW.DSize = 16
	if err := ma.Issue(wrongW, geo.Layout.Base); err == nil {
		t.Error("mismatched dsize accepted")
	}
	wrongV := slsInst(geo, 0, 1, 0, false)
	wrongV.VSize = 8
	if err := ma.Issue(wrongV, geo.Layout.Base); err == nil {
		t.Error("mismatched vsize accepted")
	}
	if _, err := ma.Load(SecNDPLd{Reg: -1}); err == nil {
		t.Error("negative register load accepted")
	}
	if _, err := ma.Load(SecNDPLd{Reg: 0, Verify: true}); err == nil {
		t.Error("verified load of unbound register accepted")
	}
}

func TestPUPlainOperation(t *testing.T) {
	// The same PU runs unprotected NDP: write plaintext and accumulate.
	mem := memory.NewSpace()
	pu, err := NewPU(mem, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	mem.Write(0x100, []byte{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 4, 0, 0, 0})
	if err := pu.Execute(Command{Op: OpMACC, Addr: 0x100, VSize: 4, DSize: 32, Imm: 10, Reg: 0}); err != nil {
		t.Fatal(err)
	}
	if err := pu.Execute(Command{Op: OpACC, Addr: 0x100, VSize: 4, DSize: 32, Reg: 0}); err != nil {
		t.Fatal(err)
	}
	got, err := pu.Load(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{11, 22, 33, 44}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("reg[0] = %v, want %v", got, want)
		}
	}
	if pu.Registers() != 2 {
		t.Errorf("Registers() = %d", pu.Registers())
	}
}

func TestPUValidation(t *testing.T) {
	mem := memory.NewSpace()
	if _, err := NewPU(mem, 0, 4); err == nil {
		t.Error("zero registers accepted")
	}
	pu, _ := NewPU(mem, 1, 4)
	if err := pu.Execute(Command{Op: OpMACC, Reg: 1, VSize: 4, DSize: 32}); err == nil {
		t.Error("bad register accepted")
	}
	if err := pu.Execute(Command{Op: OpMACC, Reg: 0, VSize: 8, DSize: 32}); err == nil {
		t.Error("bad vsize accepted")
	}
	if err := pu.Execute(Command{Op: OpMACC, Reg: 0, VSize: 4, DSize: 9}); err == nil {
		t.Error("bad dsize accepted")
	}
	if _, err := pu.Load(3); err == nil {
		t.Error("bad register load accepted")
	}
}

func TestOpStrings(t *testing.T) {
	if OpMACC.String() != "MACC" || OpACC.String() != "ACC" || OpClear.String() != "CLEAR" {
		t.Error("op labels wrong")
	}
	if Op(9).String() != "Op(9)" {
		t.Error("unknown op label")
	}
}

// The architectural headline (§IV-D): the PU command stream for SecNDP is
// byte-identical to the unprotected one — only the data differs.
func TestSameCommandsPlaintextAndCiphertext(t *testing.T) {
	// Plaintext world.
	memPlain := memory.NewSpace()
	rngSeed := rand.New(rand.NewSource(2))
	rows := make([][]uint64, 4)
	r32 := uint64(0xFFFFFFFF)
	for i := range rows {
		rows[i] = make([]uint64, testM)
		for j := range rows[i] {
			rows[i][j] = rngSeed.Uint64() & 0xFFFFF
		}
	}
	// Write plaintext rows at the same addresses the table uses.
	geoAddr := uint64(0x10000)
	for i, row := range rows {
		raw := make([]byte, testM*4)
		for j, v := range row {
			raw[j*4] = byte(v)
			raw[j*4+1] = byte(v >> 8)
			raw[j*4+2] = byte(v >> 16)
			raw[j*4+3] = byte(v >> 24)
		}
		memPlain.Write(geoAddr+uint64(i*testM*4), raw)
	}
	puPlain, _ := NewPU(memPlain, 1, testM)

	// SecNDP world.
	scheme, _ := core.NewScheme(testKey)
	geo := core.Geometry{
		Layout: memory.Layout{Placement: memory.TagNone, Base: geoAddr, NumRows: 4, RowBytes: testM * 4},
		Params: core.Params{We: testWe, M: testM},
	}
	memEnc := memory.NewSpace()
	if _, err := scheme.EncryptTable(memEnc, geo, 1, rows); err != nil {
		t.Fatal(err)
	}
	ma, _ := NewMachine(testKey, memEnc, 1, testM, testWe)

	// Identical command streams.
	cmds := []Command{
		{Op: OpMACC, Addr: geo.Layout.RowAddr(0), VSize: testM, DSize: testWe, Imm: 3, Reg: 0},
		{Op: OpMACC, Addr: geo.Layout.RowAddr(2), VSize: testM, DSize: testWe, Imm: 7, Reg: 0},
	}
	for _, c := range cmds {
		if err := puPlain.Execute(c); err != nil {
			t.Fatal(err)
		}
		inst := SecNDPInst{NDPInst: NDPInst{Op: c.Op, Addr: c.Addr, VSize: c.VSize, DSize: c.DSize, Imm: c.Imm, Reg: c.Reg}, Version: 1}
		if err := ma.Issue(inst, geo.Layout.Base); err != nil {
			t.Fatal(err)
		}
	}
	plain, _ := puPlain.Load(0)
	dec, err := ma.Load(SecNDPLd{Reg: 0})
	if err != nil {
		t.Fatal(err)
	}
	for j := range plain {
		if plain[j]&r32 != dec[j] {
			t.Fatalf("col %d: plaintext PU %d != decrypted SecNDP %d", j, plain[j], dec[j])
		}
	}
}

package isa

import (
	"errors"
	"fmt"

	"secndp/internal/field"
	"secndp/internal/memory"
	"secndp/internal/otp"
	"secndp/internal/ring"
)

// ErrVerifyInterrupt is raised by SecNDPLd when the loaded result fails
// verification — "the verification fails and an interrupt will be
// triggered" (§V-E3).
var ErrVerifyInterrupt = errors.New("isa: verification interrupt: loaded result rejected")

// tagReg is the NDP PU's extended tag accumulator (§V-D second design:
// "an operation on a vector and a tag a × [C_i | C_Ti]").
type puTagState struct {
	acc field.Elem
}

// ExecuteTag accumulates Imm × C_T(mem[tagAddr]) into the PU-side tag
// register — computation the untrusted PU performs over the encrypted tag.
func (p *PU) ExecuteTag(st *puTagState, tagAddr uint64, imm uint64) {
	ct := field.FromBytes(p.mem.Read(tagAddr, memory.TagBytes))
	st.acc = field.Add(st.acc, field.MulUint64(ct, imm))
}

// regBinding tracks what a register pair is accumulating: the version and
// checksum-seed address its OTP mirror was generated under. Mixing
// versions or tables in one register is an architectural error.
type regBinding struct {
	active   bool
	version  uint64
	seedAddr uint64
	verify   bool
}

// Machine is the trusted-processor side of §V: the SecNDP engine
// (encryption engine + OTP PU + verification engine) plus the memory
// controller that dispatches unchanged NDP commands to an untrusted PU.
type Machine struct {
	gen *otp.Generator
	pu  *PU // the untrusted rank PU
	r   ring.Ring
	m   int

	otpRegs  [][]uint64   // OTP PU registers, mirroring pu's
	puTags   []puTagState // NDP-side tag accumulators (extended regs)
	otpTags  []field.Elem // processor-side tag-pad accumulators
	bindings []regBinding
}

// NewMachine builds a machine over an untrusted memory with nregs register
// pairs of m we-bit elements.
func NewMachine(key []byte, mem *memory.Space, nregs, m int, we uint) (*Machine, error) {
	gen, err := otp.NewGenerator(key)
	if err != nil {
		return nil, err
	}
	r, err := ring.New(we)
	if err != nil {
		return nil, err
	}
	pu, err := NewPU(mem, nregs, m)
	if err != nil {
		return nil, err
	}
	ma := &Machine{
		gen: gen, pu: pu, r: r, m: m,
		otpRegs:  make([][]uint64, nregs),
		puTags:   make([]puTagState, nregs),
		otpTags:  make([]field.Elem, nregs),
		bindings: make([]regBinding, nregs),
	}
	for i := range ma.otpRegs {
		ma.otpRegs[i] = make([]uint64, m)
	}
	return ma, nil
}

// PU exposes the untrusted processing unit (for direct/plaintext use and
// for tests that corrupt its state).
func (ma *Machine) PU() *PU { return ma.pu }

// Clear resets a register pair (issues OpClear to both PUs).
func (ma *Machine) Clear(reg int) error {
	if err := ma.pu.Execute(Command{Op: OpClear, Reg: reg}); err != nil {
		return err
	}
	for j := range ma.otpRegs[reg] {
		ma.otpRegs[reg][j] = 0
	}
	ma.puTags[reg] = puTagState{}
	ma.otpTags[reg] = field.Zero
	ma.bindings[reg] = regBinding{}
	return nil
}

// Issue executes one SecNDPInst: the memory controller dispatches the
// unchanged NDP command to the untrusted PU while the SecNDP engine
// regenerates the row's OTP and mirrors the operation in the OTP PU
// (§V-E2). SeedAddr is the table base used by Algorithm 2's seed.
func (ma *Machine) Issue(inst SecNDPInst, seedAddr uint64) error {
	reg := inst.Reg
	if reg < 0 || reg >= len(ma.otpRegs) {
		return fmt.Errorf("isa: register %d out of range", reg)
	}
	if uint(inst.DSize) != ma.r.Width() {
		return fmt.Errorf("isa: dsize %d != machine width %d", inst.DSize, ma.r.Width())
	}
	if inst.VSize != ma.m {
		return fmt.Errorf("isa: vsize %d != machine width %d", inst.VSize, ma.m)
	}
	b := &ma.bindings[reg]
	if b.active {
		if b.version != inst.Version || b.seedAddr != seedAddr || b.verify != inst.Verify {
			return fmt.Errorf("isa: register %d bound to version %d/seed %#x/verify %v; clear before reuse",
				reg, b.version, b.seedAddr, b.verify)
		}
	} else {
		*b = regBinding{active: true, version: inst.Version, seedAddr: seedAddr, verify: inst.Verify}
	}

	// Untrusted side: the plain NDP command.
	if err := ma.pu.Execute(Command{
		Op: inst.Op, Addr: inst.Addr, VSize: inst.VSize, DSize: inst.DSize,
		Imm: inst.Imm, Reg: reg,
	}); err != nil {
		return err
	}
	// Trusted side: regenerate the row's pads and mirror, fused into one
	// pass over the keystream (the OTP PU never materializes pad vectors).
	w := inst.Imm
	if inst.Op == OpACC {
		w = 1
	}
	ma.gen.PadScaleAccum(ma.otpRegs[reg], w, ma.r.Width(), otp.DomainData, inst.Addr, inst.Version)

	if inst.Verify {
		// Untrusted side accumulates the encrypted tag; trusted side the
		// tag pad (Algorithm 5's two halves).
		ma.pu.ExecuteTag(&ma.puTags[reg], inst.TagAddr, w)
		et := field.FromBytes(tagPadBytes(ma.gen.TagPad(inst.Addr, inst.Version)))
		ma.otpTags[reg] = field.Add(ma.otpTags[reg], field.MulUint64(et, w))
	}
	return nil
}

func tagPadBytes(b [otp.BlockBytes]byte) []byte { return b[:] }

// Load executes SecNDPLd: the PU register lands in the response buffer,
// the OTP PU register in the decryption buffer, and the single final adder
// produces the plaintext result (§V-E3). With ld.Verify, the verification
// engine recomputes the checksum and compares it with the retrieved MAC;
// a mismatch returns ErrVerifyInterrupt.
func (ma *Machine) Load(ld SecNDPLd) ([]uint64, error) {
	reg := ld.Reg
	if reg < 0 || reg >= len(ma.otpRegs) {
		return nil, fmt.Errorf("isa: register %d out of range", reg)
	}
	b := ma.bindings[reg]
	respBuf, err := ma.pu.Load(reg) // C_res
	if err != nil {
		return nil, err
	}
	decBuf := ma.otpRegs[reg] // E_res
	res := make([]uint64, ma.m)
	ma.r.AddVec(res, respBuf, decBuf)

	if ld.Verify {
		if !b.active || !b.verify {
			return nil, fmt.Errorf("isa: register %d has no verification state", reg)
		}
		seed := field.FromBytes(tagPadBytes(ma.gen.Seed(b.seedAddr, b.version)))
		tRes := field.Horner(seed, res)
		retrieved := field.Add(ma.puTags[reg].acc, ma.otpTags[reg])
		if !tRes.Equal(retrieved) {
			return nil, ErrVerifyInterrupt
		}
	}
	return res, nil
}

package store

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"secndp/internal/core"
	"secndp/internal/memory"
)

var key = []byte("store-test-key!!")

func buildTable(t *testing.T, placement memory.TagPlacement) (*core.Scheme, *memory.Space, core.Geometry, [][]uint64) {
	t.Helper()
	scheme, err := core.NewScheme(key)
	if err != nil {
		t.Fatal(err)
	}
	geo := core.Geometry{
		Layout: memory.Layout{
			Placement: placement, Base: 0x10000, TagBase: 0x800000,
			NumRows: 16, RowBytes: 128,
		},
		Params: core.Params{We: 32, M: 32},
	}
	rng := rand.New(rand.NewSource(1))
	rows := make([][]uint64, 16)
	for i := range rows {
		rows[i] = make([]uint64, 32)
		for j := range rows[i] {
			rows[i][j] = rng.Uint64() % (1 << 20)
		}
	}
	mem := memory.NewSpace()
	if _, err := scheme.EncryptTable(mem, geo, 7, rows); err != nil {
		t.Fatal(err)
	}
	return scheme, mem, geo, rows
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, placement := range []memory.TagPlacement{
		memory.TagNone, memory.TagColoc, memory.TagSep, memory.TagECC,
	} {
		scheme, mem, geo, rows := buildTable(t, placement)
		var buf bytes.Buffer
		if err := Save(&buf, mem, geo, 7); err != nil {
			t.Fatalf("%v: save: %v", placement, err)
		}
		// Load into a fresh untrusted memory (a different machine).
		mem2 := memory.NewSpace()
		geo2, version, err := Load(&buf, mem2)
		if err != nil {
			t.Fatalf("%v: load: %v", placement, err)
		}
		if version != 7 || geo2 != geo {
			t.Fatalf("%v: header round trip: v=%d geo=%+v", placement, version, geo2)
		}
		tab, err := scheme.OpenTable(geo2, version)
		if err != nil {
			t.Fatal(err)
		}
		ndp := &core.HonestNDP{Mem: mem2}
		idx := []int{0, 5, 9}
		w := []uint64{1, 2, 3}
		var got []uint64
		if placement == memory.TagNone {
			got, err = tab.Query(ndp, idx, w)
		} else {
			got, err = tab.QueryVerified(ndp, idx, w)
		}
		if err != nil {
			t.Fatalf("%v: query after reload: %v", placement, err)
		}
		want := rows[0][3] + 2*rows[5][3] + 3*rows[9][3]
		if got[3] != want&0xFFFFFFFF {
			t.Fatalf("%v: reloaded data wrong", placement)
		}
	}
}

func TestBlobContainsNoPlaintext(t *testing.T) {
	scheme, _, geo, _ := buildTable(t, memory.TagSep)
	_ = scheme
	// Encrypt a recognizable-pattern table and check the blob.
	mem := memory.NewSpace()
	s2, _ := core.NewScheme(key)
	rows := make([][]uint64, 16)
	for i := range rows {
		rows[i] = make([]uint64, 32)
		for j := range rows[i] {
			rows[i][j] = 0xDEADBEEF
		}
	}
	if _, err := s2.EncryptTable(mem, geo, 3, rows); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, mem, geo, 3); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte{0xEF, 0xBE, 0xAD, 0xDE}) {
		// One chance collision in 2 KiB of ciphertext is ~2^-21; repeated
		// patterns appearing means plaintext leaked.
		count := bytes.Count(buf.Bytes(), []byte{0xEF, 0xBE, 0xAD, 0xDE})
		if count > 1 {
			t.Errorf("plaintext pattern appears %d times in the blob", count)
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	_, mem, geo, _ := buildTable(t, memory.TagSep)
	var buf bytes.Buffer
	if err := Save(&buf, mem, geo, 7); err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, 5, 40, 200, buf.Len() - 2} {
		raw := append([]byte(nil), buf.Bytes()...)
		raw[pos] ^= 0xFF
		if _, _, err := Load(bytes.NewReader(raw), memory.NewSpace()); !errors.Is(err, ErrFormat) {
			t.Errorf("corruption at %d not rejected: %v", pos, err)
		}
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	_, mem, geo, _ := buildTable(t, memory.TagNone)
	var buf bytes.Buffer
	if err := Save(&buf, mem, geo, 7); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3, 10, 80, buf.Len() / 2, buf.Len() - 1} {
		if _, _, err := Load(bytes.NewReader(buf.Bytes()[:n]), memory.NewSpace()); !errors.Is(err, ErrFormat) {
			t.Errorf("truncation at %d not rejected: %v", n, err)
		}
	}
}

func TestLoadRejectsWrongMagic(t *testing.T) {
	if _, _, err := Load(bytes.NewReader([]byte("NOPE....")), memory.NewSpace()); !errors.Is(err, ErrFormat) {
		t.Errorf("bad magic accepted: %v", err)
	}
}

func TestSaveValidatesGeometry(t *testing.T) {
	bad := core.Geometry{Params: core.Params{We: 32, M: 0}}
	if err := Save(&bytes.Buffer{}, memory.NewSpace(), bad, 1); err == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestAdversarialBlobStillCaughtByScheme(t *testing.T) {
	// A smart adversary fixes up the CRC after tampering: store's own check
	// passes, but the scheme's verification still rejects the data.
	scheme, mem, geo, _ := buildTable(t, memory.TagSep)
	var buf bytes.Buffer
	if err := Save(&buf, mem, geo, 7); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	// Flip a ciphertext byte (inside the data section) and recompute the
	// CRC by re-running Save-like framing: easiest is to corrupt and then
	// fix the trailing CRC by brute force over the 4 CRC bytes... instead
	// simply corrupt memory after a clean load, which models the same
	// adversary.
	mem2 := memory.NewSpace()
	geo2, v, err := Load(bytes.NewReader(raw), mem2)
	if err != nil {
		t.Fatal(err)
	}
	mem2.FlipBit(geo2.Layout.RowAddr(5)+3, 1)
	tab, _ := scheme.OpenTable(geo2, v)
	if _, err := tab.QueryVerified(&core.HonestNDP{Mem: mem2}, []int{5}, []uint64{1}); !errors.Is(err, core.ErrVerification) {
		t.Errorf("post-load tampering not rejected by the scheme: %v", err)
	}
}

// Package store serializes encrypted SecNDP tables: the geometry, version,
// ciphertext, and verification tags — everything the *untrusted* side
// holds — to an io.Writer and back. A stored blob is exactly what would
// live on an untrusted SSD in the paper's near-storage deployment (§III-A:
// computation "near memory or data storage"): it contains no key material
// and no plaintext, so it can be shipped, cached, and re-provisioned
// freely; only a Scheme holding the key can use it.
//
// Format (little-endian, length-prefixed):
//
//	magic "SNDP" | format u16 | geometry fields | version u64 |
//	data length u64 | data bytes | tag section
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"secndp/internal/core"
	"secndp/internal/memory"
)

var magic = [4]byte{'S', 'N', 'D', 'P'}

// formatVersion is bumped on incompatible layout changes.
const formatVersion uint16 = 1

// maxBlobBytes bounds what Load will allocate (corrupt headers must not
// OOM the loader).
const maxBlobBytes = 1 << 32

// ErrFormat reports a malformed or corrupt blob.
var ErrFormat = errors.New("store: malformed table blob")

// Save writes the untrusted-side state of a table region (ciphertext and
// tags read from mem under the geometry) to w, with a trailing CRC-32 so
// accidental corruption is distinguished from adversarial tampering
// (which only the scheme's verification can catch).
func Save(w io.Writer, mem *memory.Space, geo core.Geometry, version uint64) error {
	if err := geo.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)

	if _, err := out.Write(magic[:]); err != nil {
		return err
	}
	if err := binary.Write(out, binary.LittleEndian, formatVersion); err != nil {
		return err
	}
	fields := []uint64{
		uint64(geo.Layout.Placement), geo.Layout.Base, geo.Layout.TagBase,
		uint64(geo.Layout.NumRows), uint64(geo.Layout.RowBytes),
		uint64(geo.Params.We), uint64(geo.Params.M),
		uint64(geo.Params.ChecksumSubstrings), version,
	}
	for _, f := range fields {
		if err := binary.Write(out, binary.LittleEndian, f); err != nil {
			return err
		}
	}
	// Ciphertext region (includes co-located tags via the stride).
	span := geo.Layout.DataEnd() - geo.Layout.Base
	if err := binary.Write(out, binary.LittleEndian, span); err != nil {
		return err
	}
	if _, err := out.Write(mem.Snapshot(geo.Layout.Base, int(span))); err != nil {
		return err
	}
	// Tag section: separate region or ECC side band.
	switch geo.Layout.Placement {
	case memory.TagSep:
		n := uint64(geo.Layout.NumRows) * memory.TagBytes
		if err := binary.Write(out, binary.LittleEndian, n); err != nil {
			return err
		}
		if _, err := out.Write(mem.Snapshot(geo.Layout.TagBase, int(n))); err != nil {
			return err
		}
	case memory.TagECC:
		n := uint64(geo.Layout.NumRows) * memory.TagBytes
		if err := binary.Write(out, binary.LittleEndian, n); err != nil {
			return err
		}
		for i := 0; i < geo.Layout.NumRows; i++ {
			if _, err := out.Write(mem.ReadECC(geo.Layout.RowAddr(i), memory.TagBytes)); err != nil {
				return err
			}
		}
	default:
		if err := binary.Write(out, binary.LittleEndian, uint64(0)); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads a blob into mem at the geometry recorded in the header and
// returns that geometry and the version. The caller opens the table with
// scheme.OpenTable(geo, version); results remain subject to the scheme's
// own verification — the CRC here only catches accidental damage.
func Load(r io.Reader, mem *memory.Space) (core.Geometry, uint64, error) {
	crc := crc32.NewIEEE()
	br := bufio.NewReader(r)
	in := io.TeeReader(br, crc)

	var m [4]byte
	if _, err := io.ReadFull(in, m[:]); err != nil {
		return core.Geometry{}, 0, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if m != magic {
		return core.Geometry{}, 0, fmt.Errorf("%w: bad magic %q", ErrFormat, m)
	}
	var fv uint16
	if err := binary.Read(in, binary.LittleEndian, &fv); err != nil {
		return core.Geometry{}, 0, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if fv != formatVersion {
		return core.Geometry{}, 0, fmt.Errorf("%w: format %d not supported", ErrFormat, fv)
	}
	var fields [9]uint64
	for i := range fields {
		if err := binary.Read(in, binary.LittleEndian, &fields[i]); err != nil {
			return core.Geometry{}, 0, fmt.Errorf("%w: %v", ErrFormat, err)
		}
	}
	geo := core.Geometry{
		Layout: memory.Layout{
			Placement: memory.TagPlacement(fields[0]),
			Base:      fields[1],
			TagBase:   fields[2],
			NumRows:   int(fields[3]),
			RowBytes:  int(fields[4]),
		},
		Params: core.Params{
			We: uint(fields[5]), M: int(fields[6]), ChecksumSubstrings: int(fields[7]),
		},
	}
	version := fields[8]
	if err := geo.Validate(); err != nil {
		return core.Geometry{}, 0, fmt.Errorf("%w: %v", ErrFormat, err)
	}

	var span uint64
	if err := binary.Read(in, binary.LittleEndian, &span); err != nil {
		return core.Geometry{}, 0, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if span > maxBlobBytes || span != geo.Layout.DataEnd()-geo.Layout.Base {
		return core.Geometry{}, 0, fmt.Errorf("%w: data span %d inconsistent with geometry", ErrFormat, span)
	}
	data := make([]byte, span)
	if _, err := io.ReadFull(in, data); err != nil {
		return core.Geometry{}, 0, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	var tagLen uint64
	if err := binary.Read(in, binary.LittleEndian, &tagLen); err != nil {
		return core.Geometry{}, 0, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	wantTagLen := uint64(0)
	if geo.Layout.Placement == memory.TagSep || geo.Layout.Placement == memory.TagECC {
		wantTagLen = uint64(geo.Layout.NumRows) * memory.TagBytes
	}
	if tagLen != wantTagLen {
		return core.Geometry{}, 0, fmt.Errorf("%w: tag section %d, want %d", ErrFormat, tagLen, wantTagLen)
	}
	tags := make([]byte, tagLen)
	if _, err := io.ReadFull(in, tags); err != nil {
		return core.Geometry{}, 0, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return core.Geometry{}, 0, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if got != want {
		return core.Geometry{}, 0, fmt.Errorf("%w: CRC mismatch", ErrFormat)
	}

	// Commit into memory only after everything checked out.
	mem.Write(geo.Layout.Base, data)
	switch geo.Layout.Placement {
	case memory.TagSep:
		mem.Write(geo.Layout.TagBase, tags)
	case memory.TagECC:
		for i := 0; i < geo.Layout.NumRows; i++ {
			mem.WriteECC(geo.Layout.RowAddr(i), tags[i*memory.TagBytes:(i+1)*memory.TagBytes])
		}
	}
	return geo, version, nil
}

package secndp

import (
	"context"
	"math/rand"
	"testing"
)

// The rotation suite pins Table.Reencrypt and the serving-epoch
// contract: rotation rewrites the untrusted memory under a fresh
// version, discards the pad cache, and bumps Epoch so derived caches
// (the serving layer's hot-row cache) invalidate.

func TestReencryptSameContents(t *testing.T) {
	eng, err := New(testKey, WithPadCache(64))
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory()
	rng := rand.New(rand.NewSource(300))
	rows := testRows(rng, 32, 16, 1<<20)
	tab, err := eng.CreateTable(context.Background(), LocalBackend(mem), TableSpec{Rows: 32, Cols: 16}, rows)
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()

	req := Request{Idx: []int{1, 7, 30}, Weights: []uint64{2, 3, 5}}
	want := plainSum(rows, req.Idx, req.Weights, 16, 0xFFFFFFFF)
	if _, err := tab.Query(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	v0, e0 := tab.Version(), tab.Epoch()
	if e0 != 1 {
		t.Fatalf("fresh table epoch %d, want 1", e0)
	}

	if err := tab.Reencrypt(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if v := tab.Version(); v <= v0 {
		t.Fatalf("version %d after Reencrypt, want > %d", v, v0)
	}
	if e := tab.Epoch(); e != e0+1 {
		t.Fatalf("epoch %d after Reencrypt, want %d", e, e0+1)
	}
	// Pad cache rebuilt: the old version's pads must be gone.
	if hits, misses := tab.CacheStats(); hits+misses != 0 {
		t.Fatalf("pad cache carried %d hits/%d misses across rotation", hits, misses)
	}
	res, err := tab.Query(context.Background(), req)
	if err != nil {
		t.Fatalf("post-rotation query: %v", err)
	}
	if !res.Verified {
		t.Fatal("post-rotation query unverified")
	}
	for j := range want {
		if res.Values[j] != want[j] {
			t.Fatalf("col %d: %d != %d after same-contents rotation", j, res.Values[j], want[j])
		}
	}
}

func TestReencryptNewContents(t *testing.T) {
	eng, _ := New(testKey, WithPadCache(64))
	mem := NewMemory()
	rng := rand.New(rand.NewSource(310))
	rows := testRows(rng, 16, 8, 1<<20)
	tab, err := eng.CreateTable(context.Background(), LocalBackend(mem), TableSpec{Rows: 16, Cols: 8}, rows)
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()

	fresh := testRows(rng, 16, 8, 1<<20)
	if err := tab.Reencrypt(context.Background(), fresh); err != nil {
		t.Fatal(err)
	}
	req := Request{Idx: []int{0, 5, 15}, Weights: []uint64{1, 4, 2}}
	res, err := tab.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("rotated-contents query unverified")
	}
	want := plainSum(fresh, req.Idx, req.Weights, 8, 0xFFFFFFFF)
	for j := range want {
		if res.Values[j] != want[j] {
			t.Fatalf("col %d: %d != %d (old contents leaked through rotation?)", j, res.Values[j], want[j])
		}
	}

	// Misshapen replacement contents are rejected without touching state.
	e0 := tab.Epoch()
	if err := tab.Reencrypt(context.Background(), fresh[:4]); err == nil {
		t.Fatal("short newRows accepted")
	}
	if tab.Epoch() != e0 {
		t.Fatal("failed rotation bumped the epoch")
	}
}

func TestReencryptDetectsTamper(t *testing.T) {
	// nil-newRows rotation decrypts and verifies before re-encrypting, so
	// corrupted ciphertext cannot be laundered into a fresh authenticated
	// table.
	eng, _ := New(testKey)
	mem := NewMemory()
	rng := rand.New(rand.NewSource(320))
	rows := testRows(rng, 8, 8, 1<<20)
	tab, err := eng.CreateTable(context.Background(), LocalBackend(mem), TableSpec{Rows: 8, Cols: 8}, rows)
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	mem.FlipBit(tab.Geometry().Layout.RowAddr(3)+1, 4)
	if err := tab.Reencrypt(context.Background(), nil); err == nil {
		t.Fatal("rotation laundered tampered ciphertext")
	}
}

func TestReencryptUnsupportedBackends(t *testing.T) {
	specs, _ := reshardTestServers(t, 2)
	eng, err := New(testKey, WithTransport(fastTransport()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(330))
	rows := testRows(rng, 16, 8, 1<<20)
	ctab, err := eng.CreateTable(context.Background(), ClusterBackend(specs...),
		TableSpec{Rows: 16, Cols: 8}, rows)
	if err != nil {
		t.Fatal(err)
	}
	defer ctab.Close()
	if err := ctab.Reencrypt(context.Background(), nil); err == nil {
		t.Fatal("cluster Reencrypt accepted")
	}
}

// TestReshardBumpsEpoch: topology flips count as rotations for derived
// caches — the serving layer keys its hot-row cache on Epoch, so a
// Reshard must advance it exactly like a Reencrypt does.
func TestReshardBumpsEpoch(t *testing.T) {
	specs, _ := reshardTestServers(t, 4)
	eng, err := New(testKey, WithTransport(fastTransport()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(340))
	rows := testRows(rng, 32, 8, 1<<20)
	tab, err := eng.CreateTable(context.Background(), ClusterBackend(specs[:2]...),
		TableSpec{Rows: 32, Cols: 8}, rows)
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	e0 := tab.Epoch()
	if e0 != 1 {
		t.Fatalf("fresh cluster table epoch %d, want 1", e0)
	}
	if err := tab.Reshard(context.Background(), ClusterBackend(specs...)); err != nil {
		t.Fatal(err)
	}
	if e := tab.Epoch(); e != e0+1 {
		t.Fatalf("epoch %d after Reshard, want %d", e, e0+1)
	}
}
